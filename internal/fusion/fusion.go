// Package fusion implements Cooper's raw-data-level fusion: aligning a
// transmitting vehicle's LiDAR point cloud into the receiving vehicle's
// sensor frame using GPS positions and IMU attitudes (Eqs. 1–3 of the
// paper) and merging the clouds (Eq. 2). It also models GPS drift — the
// robustness dimension of Fig. 10 — and provides an ICP-style refinement
// that corrects residual misalignment.
package fusion

import (
	"math/rand"

	"cooper/internal/geom"
	"cooper/internal/lidar"
	"cooper/internal/pointcloud"
)

// VehicleState is the pose information a vehicle encapsulates in a Cooper
// exchange package (§II-D): its GPS position and IMU attitude, plus the
// LiDAR mount height (installation information).
type VehicleState struct {
	// GPS is the vehicle's reported world position, metres.
	GPS geom.Vec3
	// Yaw, Pitch and Roll are the IMU attitude angles, radians.
	Yaw, Pitch, Roll float64
	// MountHeight is the LiDAR's height above the vehicle origin.
	MountHeight float64
}

// Pose returns the vehicle's rigid body pose in the world frame.
func (s VehicleState) Pose() geom.Transform {
	return geom.NewTransform(s.Yaw, s.Pitch, s.Roll, s.GPS)
}

// SensorToWorld returns the transform from the vehicle's LiDAR sensor
// frame to the world frame.
func (s VehicleState) SensorToWorld() geom.Transform {
	return lidar.SensorTransform(s.Pose(), s.MountHeight).Inverse()
}

// AlignTransform computes the paper's Eq. 3 transform: it maps points from
// the transmitter's sensor frame into the receiver's sensor frame using
// the two vehicles' GPS/IMU states. The rotation is built from the IMU
// difference (Eq. 1) and the translation from the GPS difference.
func AlignTransform(receiver, transmitter VehicleState) geom.Transform {
	toWorld := transmitter.SensorToWorld()
	worldToReceiver := lidar.SensorTransform(receiver.Pose(), receiver.MountHeight)
	return worldToReceiver.Compose(toWorld)
}

// Align maps the transmitter's cloud into the receiver's sensor frame.
func Align(receiver, transmitter VehicleState, cloud *pointcloud.Cloud) *pointcloud.Cloud {
	return cloud.Transform(AlignTransform(receiver, transmitter))
}

// Merge implements Eq. 2: the receiver's points unioned with the aligned
// clouds of any number of transmitters.
func Merge(receiverCloud *pointcloud.Cloud, aligned ...*pointcloud.Cloud) *pointcloud.Cloud {
	return receiverCloud.Merge(aligned...)
}

// Fuse is the full cooperative step for one transmitter: align then merge.
func Fuse(receiver, transmitter VehicleState, receiverCloud, transmitterCloud *pointcloud.Cloud) *pointcloud.Cloud {
	return Merge(receiverCloud, Align(receiver, transmitter, transmitterCloud))
}

// DriftMode enumerates the GPS skew regimes of the paper's robustness
// experiment (Fig. 10).
type DriftMode int

// Drift modes, §IV-F: baseline (no artificial skew), skew of both axes to
// the drift bound, skew of a single axis, and doubling the bound to
// simulate abnormal GPS behaviour.
const (
	DriftNone DriftMode = iota + 1
	DriftBothAxes
	DriftOneAxis
	DriftDouble
)

// String implements fmt.Stringer.
func (m DriftMode) String() string {
	switch m {
	case DriftNone:
		return "baseline"
	case DriftBothAxes:
		return "skew-xy"
	case DriftOneAxis:
		return "skew-one-axis"
	case DriftDouble:
		return "skew-2x"
	default:
		return "unknown"
	}
}

// MaxGPSDrift is the positional error bound of an integrated GPS/IMU
// system, ≈10 cm (paper §IV-F, citing Chiang et al.).
const MaxGPSDrift = 0.10

// ApplyDrift returns the state with its GPS reading skewed per the mode.
// The rng supplies the axis choice and signs; pass a deterministic source
// for reproducible experiments.
func ApplyDrift(s VehicleState, mode DriftMode, rng *rand.Rand) VehicleState {
	sign := func() float64 {
		if rng.Intn(2) == 0 {
			return -1
		}
		return 1
	}
	out := s
	switch mode {
	case DriftBothAxes:
		out.GPS.X += sign() * MaxGPSDrift
		out.GPS.Y += sign() * MaxGPSDrift
	case DriftOneAxis:
		if rng.Intn(2) == 0 {
			out.GPS.X += sign() * MaxGPSDrift
		} else {
			out.GPS.Y += sign() * MaxGPSDrift
		}
	case DriftDouble:
		out.GPS.X += sign() * 2 * MaxGPSDrift
		out.GPS.Y += sign() * 2 * MaxGPSDrift
	}
	return out
}
