package fusion

import (
	"math"
	"math/rand"
	"testing"

	"cooper/internal/geom"
	"cooper/internal/lidar"
	"cooper/internal/pointcloud"
)

func state(x, y, yaw float64) VehicleState {
	return VehicleState{GPS: geom.V3(x, y, 0), Yaw: yaw, MountHeight: 1.73}
}

func TestAlignTransformIdentityForSamePose(t *testing.T) {
	a := state(5, 5, 0.4)
	tr := AlignTransform(a, a)
	if !tr.AlmostEqual(geom.IdentityTransform(), 1e-9) {
		t.Errorf("same-pose alignment = %+v, want identity", tr)
	}
}

func TestAlignMapsSharedWorldPoint(t *testing.T) {
	// Both vehicles observe the same world point; after alignment the
	// transmitter's observation must land on the receiver's.
	rx := state(0, 0, 0)
	tx := state(20, 10, math.Pi/3)
	world := geom.V3(12, 4, 1.0)

	rxSensor := lidar.SensorTransform(rx.Pose(), rx.MountHeight).Apply(world)
	txSensor := lidar.SensorTransform(tx.Pose(), tx.MountHeight).Apply(world)

	got := AlignTransform(rx, tx).Apply(txSensor)
	if !got.AlmostEqual(rxSensor, 1e-9) {
		t.Errorf("aligned point %v, want %v", got, rxSensor)
	}
}

func TestAlignCloud(t *testing.T) {
	rx := state(0, 0, 0)
	tx := state(10, 0, math.Pi) // facing back toward the receiver
	// A point 3 m in front of the transmitter sits at world x = 7.
	cloud := pointcloud.FromPoints([]pointcloud.Point{{X: 3, Y: 0, Z: 0}})
	aligned := Align(rx, tx, cloud)
	p := aligned.At(0)
	if math.Abs(p.X-7) > 1e-9 || math.Abs(p.Y) > 1e-9 {
		t.Errorf("aligned to (%v, %v), want (7, 0)", p.X, p.Y)
	}
	// Sensor heights match, so z is unchanged.
	if math.Abs(p.Z) > 1e-9 {
		t.Errorf("z = %v, want 0", p.Z)
	}
}

func TestFuseGrowsCloud(t *testing.T) {
	rx := state(0, 0, 0)
	tx := state(30, 0, 0)
	a := pointcloud.FromPoints([]pointcloud.Point{{X: 1}, {X: 2}})
	b := pointcloud.FromPoints([]pointcloud.Point{{X: 1}})
	m := Fuse(rx, tx, a, b)
	if m.Len() != 3 {
		t.Errorf("fused len = %d, want 3", m.Len())
	}
	// The transmitter's x=1 lands at world 31 = receiver frame 31.
	if math.Abs(m.At(2).X-31) > 1e-9 {
		t.Errorf("transmitter point at %v, want 31", m.At(2).X)
	}
}

func TestApplyDriftMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := state(100, 50, 0.3)

	for i := 0; i < 50; i++ {
		const eps = 1e-9
		near := func(a, b float64) bool { return math.Abs(a-b) < eps }
		d := ApplyDrift(s, DriftBothAxes, rng)
		if !near(math.Abs(d.GPS.X-s.GPS.X), MaxGPSDrift) || !near(math.Abs(d.GPS.Y-s.GPS.Y), MaxGPSDrift) {
			t.Fatalf("both-axes drift moved by (%v, %v)", d.GPS.X-s.GPS.X, d.GPS.Y-s.GPS.Y)
		}
		d = ApplyDrift(s, DriftOneAxis, rng)
		dx, dy := math.Abs(d.GPS.X-s.GPS.X), math.Abs(d.GPS.Y-s.GPS.Y)
		if !(near(dx, MaxGPSDrift) && dy == 0) && !(dx == 0 && near(dy, MaxGPSDrift)) {
			t.Fatalf("one-axis drift moved by (%v, %v)", dx, dy)
		}
		d = ApplyDrift(s, DriftDouble, rng)
		if !near(math.Abs(d.GPS.X-s.GPS.X), 2*MaxGPSDrift) || !near(math.Abs(d.GPS.Y-s.GPS.Y), 2*MaxGPSDrift) {
			t.Fatalf("double drift moved by (%v, %v)", d.GPS.X-s.GPS.X, d.GPS.Y-s.GPS.Y)
		}
	}
	if got := ApplyDrift(s, DriftNone, rng); got != s {
		t.Error("baseline drift changed the state")
	}
}

func TestDriftModeString(t *testing.T) {
	cases := map[DriftMode]string{
		DriftNone:     "baseline",
		DriftBothAxes: "skew-xy",
		DriftOneAxis:  "skew-one-axis",
		DriftDouble:   "skew-2x",
		DriftMode(99): "unknown",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestDriftKeepsAttitude(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := VehicleState{GPS: geom.V3(1, 2, 0), Yaw: 0.5, Pitch: 0.1, Roll: -0.2, MountHeight: 1.73}
	d := ApplyDrift(s, DriftDouble, rng)
	if d.Yaw != s.Yaw || d.Pitch != s.Pitch || d.Roll != s.Roll || d.MountHeight != s.MountHeight {
		t.Error("drift altered non-GPS fields")
	}
}

func TestAlignmentErrorBoundedByDrift(t *testing.T) {
	// With drift ≤ 2·MaxGPSDrift per axis on both vehicles, a shared
	// world point misaligns by at most 4·√2·MaxGPSDrift ≈ 0.57 m.
	rng := rand.New(rand.NewSource(42))
	rx := state(0, 0, 0.2)
	tx := state(15, -5, 2.1)
	world := geom.V3(10, 3, 0.5)
	txSensor := lidar.SensorTransform(tx.Pose(), tx.MountHeight).Apply(world)
	ideal := AlignTransform(rx, tx).Apply(txSensor)

	for i := 0; i < 100; i++ {
		rxD := ApplyDrift(rx, DriftDouble, rng)
		txD := ApplyDrift(tx, DriftDouble, rng)
		got := AlignTransform(rxD, txD).Apply(txSensor)
		if d := got.Dist(ideal); d > 4*math.Sqrt2*MaxGPSDrift+1e-9 {
			t.Fatalf("drifted alignment error %v exceeds bound", d)
		}
	}
}
