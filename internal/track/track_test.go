package track

import (
	"math"
	"testing"
	"time"

	"cooper/internal/geom"
	"cooper/internal/spod"
)

func det(x, y float64) spod.Detection {
	return spod.Detection{Box: geom.NewBox(geom.V3(x, y, 0.78), 3.9, 1.6, 1.56, 0), Score: 0.9}
}

func at(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// TestTrackerFollowsConstantVelocity: a single object moving in a
// straight line keeps one identity and the Kalman filter converges on
// its true velocity.
func TestTrackerFollowsConstantVelocity(t *testing.T) {
	tr := New(Config{})
	var id0 int
	for k := 0; k < 10; k++ {
		x := 10.0 * float64(k) * 0.5 // 10 m/s at 2 Hz
		ids := tr.Step(at(500*k), []spod.Detection{det(x, 2)})
		if k == 0 {
			id0 = ids[0]
		} else if ids[0] != id0 {
			t.Fatalf("frame %d: identity switched from %d to %d", k, id0, ids[0])
		}
	}
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("want a single track, got %d", len(tracks))
	}
	if v := tracks[0].Vel.X; math.Abs(v-10) > 1.0 {
		t.Errorf("filtered velocity = %.2f m/s, want ≈ 10", v)
	}
	if tracks[0].Hits != 10 {
		t.Errorf("hits = %d, want 10", tracks[0].Hits)
	}
	// Latency-compensated readout: predicting half a period ahead lands
	// between the last and next positions.
	pred := tr.Predict(at(500*9 + 250))
	wantX := 10.0*9*0.5 + 10*0.25
	if math.Abs(pred[0].Center.X-wantX) > 1.5 {
		t.Errorf("predicted x = %.2f, want ≈ %.2f", pred[0].Center.X, wantX)
	}
}

// TestTrackerSurvivesMisses: a track outlives a detection gap shorter
// than MaxMisses and reclaims its object, but dies past the limit.
func TestTrackerSurvivesMisses(t *testing.T) {
	tr := New(Config{MaxMisses: 2})
	ids := tr.Step(at(0), []spod.Detection{det(5, 0)})
	id0 := ids[0]
	tr.Step(at(500), []spod.Detection{det(7.5, 0)}) // velocity lock
	tr.Step(at(1000), nil)                          // miss 1
	tr.Step(at(1500), nil)                          // miss 2
	ids = tr.Step(at(2000), []spod.Detection{det(15, 0)})
	if ids[0] != id0 {
		t.Errorf("track did not survive a 2-frame gap: got id %d, want %d", ids[0], id0)
	}
	tr.Step(at(2500), nil)
	tr.Step(at(3000), nil)
	tr.Step(at(3500), nil)
	if n := len(tr.Tracks()); n != 0 {
		t.Errorf("track should have died after MaxMisses, still %d alive", n)
	}
}

// TestTrackerDistanceGateRescue: at a low frame rate a fast object moves
// more than its own length between frames (zero IoU); the distance gate
// must still re-associate it instead of spawning a new identity.
func TestTrackerDistanceGateRescue(t *testing.T) {
	tr := New(Config{})
	ids := tr.Step(at(0), []spod.Detection{det(0, 0)})
	id0 := ids[0]
	ids = tr.Step(at(1000), []spod.Detection{det(5.5, 0)}) // 5.5 m jump, no overlap
	if ids[0] != id0 {
		t.Errorf("distance gate failed: new id %d, want %d", ids[0], id0)
	}
	// Beyond the gate a new identity is correct.
	ids = tr.Step(at(2000), []spod.Detection{det(30, 0)})
	if ids[0] == id0 {
		t.Error("a 25 m jump must not keep the identity")
	}
}

// TestTrackerEmptyAndDeterministic: empty frames are harmless, and two
// trackers fed the same stream agree exactly.
func TestTrackerEmptyAndDeterministic(t *testing.T) {
	if got := New(Config{}).Step(at(0), nil); len(got) != 0 {
		t.Errorf("empty frame returned %v", got)
	}
	stream := [][]spod.Detection{
		{det(0, 0), det(10, 3)},
		{det(1, 0), det(11, 3), det(20, -5)},
		nil,
		{det(3, 0), det(13, 3), det(22, -5)},
	}
	run := func() []int {
		tr := New(Config{})
		var out []int
		for k, dets := range stream {
			out = append(out, tr.Step(at(300*k), dets)...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic assignment at %d: %v vs %v", i, a, b)
		}
	}
}

// TestTrackerTwoLanes: two parallel objects moving together must keep
// two distinct stable identities — the association must not swap them.
func TestTrackerTwoLanes(t *testing.T) {
	tr := New(Config{})
	var first []int
	for k := 0; k < 8; k++ {
		x := 6.0 * float64(k) * 0.5
		ids := tr.Step(at(500*k), []spod.Detection{det(x, -1.75), det(x+2, 1.75)})
		if k == 0 {
			first = append([]int{}, ids...)
			if first[0] == first[1] {
				t.Fatal("two detections born into one track")
			}
		} else if ids[0] != first[0] || ids[1] != first[1] {
			t.Fatalf("frame %d: lanes swapped or split: %v, want %v", k, ids, first)
		}
	}
}
