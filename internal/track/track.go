// Package track maintains object tracks over fused detection streams:
// greedy BEV-IoU data association plus constant-velocity Kalman
// smoothing of each track's ground-plane motion. It is the temporal
// layer on top of Cooper's per-frame cooperative detections — the fused
// view only becomes a drivable world model once detections persist
// across frames — and it is latency-aware: every Step carries a
// timestamp, tracks are extrapolated to the incoming frame's time before
// association, and Predict exposes the same extrapolation so a consumer
// can read the fleet's state at any query time.
//
// A Tracker is deterministic: association order, tie-breaks and every
// filter operation are fixed, so identical detection streams yield
// identical track IDs byte for byte.
package track

import (
	"sort"
	"time"

	"cooper/internal/geom"
	"cooper/internal/spod"
)

// Config parameterises a Tracker.
type Config struct {
	// MatchIoU is the minimum BEV IoU at which a detection may join an
	// existing track.
	MatchIoU float64
	// MatchDist is the centre-distance gate (metres) for the fallback
	// association pass: a detection with no IoU overlap may still join
	// the nearest track within this distance. Without it, a newborn
	// track (velocity still unknown) loses any object that moves more
	// than its own length between frames — exactly the low-frame-rate
	// regime the episode sweeps probe.
	MatchDist float64
	// MaxMisses is how many consecutive unmatched frames a track
	// survives before it is dropped.
	MaxMisses int
	// ProcessNoise is the white-acceleration variance of the constant-
	// velocity model, (m/s²)².
	ProcessNoise float64
	// MeasurementNoise is the position measurement variance, m².
	MeasurementNoise float64
	// InitialVelVar is the velocity variance of a newborn track, (m/s)².
	InitialVelVar float64
}

// DefaultConfig returns tracking parameters tuned for car-sized objects
// observed at cooperative frame rates (1–10 Hz).
func DefaultConfig() Config {
	return Config{
		MatchIoU:         0.1,
		MatchDist:        6.0,
		MaxMisses:        3,
		ProcessNoise:     4.0,
		MeasurementNoise: 0.25,
		InitialVelVar:    25.0,
	}
}

// Track is one tracked object.
type Track struct {
	// ID is the track's stable identity, assigned at birth and never
	// reused within a Tracker.
	ID int
	// Box is the smoothed box at the track's last update time: filtered
	// center, the last matched detection's extents and yaw.
	Box geom.Box
	// Vel is the filtered ground-plane velocity, m/s.
	Vel geom.Vec3
	// Hits counts matched frames; Misses counts consecutive unmatched
	// frames since the last match.
	Hits, Misses int

	kx, ky  kalman1D
	updated time.Duration
}

// predictedBox returns the track's box extrapolated to time now.
func (t *Track) predictedBox(now time.Duration) geom.Box {
	dt := (now - t.updated).Seconds()
	px, _ := t.kx.predictState(dt)
	py, _ := t.ky.predictState(dt)
	b := t.Box
	b.Center = geom.V3(px, py, t.Box.Center.Z)
	return b
}

// Tracker associates per-frame detections into tracks.
type Tracker struct {
	cfg    Config
	tracks []*Track
	nextID int
	last   time.Duration
	primed bool
}

// New returns a Tracker. Zero config fields fall back to DefaultConfig.
func New(cfg Config) *Tracker {
	def := DefaultConfig()
	if cfg.MatchIoU <= 0 {
		cfg.MatchIoU = def.MatchIoU
	}
	if cfg.MatchDist <= 0 {
		cfg.MatchDist = def.MatchDist
	}
	if cfg.MaxMisses <= 0 {
		cfg.MaxMisses = def.MaxMisses
	}
	if cfg.ProcessNoise <= 0 {
		cfg.ProcessNoise = def.ProcessNoise
	}
	if cfg.MeasurementNoise <= 0 {
		cfg.MeasurementNoise = def.MeasurementNoise
	}
	if cfg.InitialVelVar <= 0 {
		cfg.InitialVelVar = def.InitialVelVar
	}
	return &Tracker{cfg: cfg, nextID: 1}
}

// Tracks returns the live tracks, oldest first.
func (tr *Tracker) Tracks() []*Track { return tr.tracks }

// Step advances the tracker to time now with one frame of detections and
// returns, per detection, the track ID it was assigned to (new tracks
// are born for unmatched detections, so every detection gets an ID).
// Frames must arrive in non-decreasing time order.
func (tr *Tracker) Step(now time.Duration, dets []spod.Detection) []int {
	dt := 0.0
	if tr.primed && now > tr.last {
		dt = (now - tr.last).Seconds()
	}
	tr.last = now
	tr.primed = true

	// Predict every live track to the frame time.
	for _, t := range tr.tracks {
		t.kx.predict(dt, tr.cfg.ProcessNoise)
		t.ky.predict(dt, tr.cfg.ProcessNoise)
		t.Box.Center = geom.V3(t.kx.p, t.ky.p, t.Box.Center.Z)
		t.updated = now
	}

	// Greedy association between predicted track boxes and detections:
	// overlap candidates rank by descending IoU; detections with no
	// overlap may still claim the nearest track inside the distance
	// gate, ranked after every overlap pair by ascending distance. Ties
	// break on track order then detection index, so the assignment is a
	// pure function of the inputs.
	type pair struct {
		iou  float64
		dist float64
		t, d int
	}
	var pairs []pair
	for ti, t := range tr.tracks {
		for di := range dets {
			if iou := geom.IoUBEV(t.Box, dets[di].Box); iou >= tr.cfg.MatchIoU {
				pairs = append(pairs, pair{iou: iou, t: ti, d: di})
			} else if d := t.Box.Center.DistXY(dets[di].Box.Center); d <= tr.cfg.MatchDist {
				pairs = append(pairs, pair{dist: d, t: ti, d: di})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if (a.iou > 0) != (b.iou > 0) {
			return a.iou > 0
		}
		if a.iou != b.iou {
			return a.iou > b.iou
		}
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		if a.t != b.t {
			return a.t < b.t
		}
		return a.d < b.d
	})

	trackOf := make([]int, len(dets))
	for i := range trackOf {
		trackOf[i] = -1
	}
	usedTrack := make([]bool, len(tr.tracks))
	usedDet := make([]bool, len(dets))
	for _, p := range pairs {
		if usedTrack[p.t] || usedDet[p.d] {
			continue
		}
		usedTrack[p.t] = true
		usedDet[p.d] = true
		t := tr.tracks[p.t]
		d := dets[p.d]
		t.kx.update(d.Box.Center.X, tr.cfg.MeasurementNoise)
		t.ky.update(d.Box.Center.Y, tr.cfg.MeasurementNoise)
		t.Box = d.Box
		t.Box.Center = geom.V3(t.kx.p, t.ky.p, d.Box.Center.Z)
		t.Vel = geom.V3(t.kx.v, t.ky.v, 0)
		t.Hits++
		t.Misses = 0
		trackOf[p.d] = t.ID
	}

	// Unmatched tracks age; the ones past MaxMisses die.
	alive := tr.tracks[:0]
	for ti, t := range tr.tracks {
		if !usedTrack[ti] {
			t.Misses++
		}
		if t.Misses <= tr.cfg.MaxMisses {
			alive = append(alive, t)
		}
	}
	tr.tracks = alive

	// Unmatched detections are born as new tracks, in detection order.
	for di := range dets {
		if usedDet[di] {
			continue
		}
		d := dets[di]
		t := &Track{
			ID:      tr.nextID,
			Box:     d.Box,
			Hits:    1,
			kx:      newKalman1D(d.Box.Center.X, tr.cfg.MeasurementNoise, tr.cfg.InitialVelVar),
			ky:      newKalman1D(d.Box.Center.Y, tr.cfg.MeasurementNoise, tr.cfg.InitialVelVar),
			updated: now,
		}
		tr.nextID++
		tr.tracks = append(tr.tracks, t)
		trackOf[di] = t.ID
	}
	return trackOf
}

// Predict returns every live track's box extrapolated to the query time
// — the latency-compensated world state a planner would consume while
// the next fused frame is still on the channel.
func (tr *Tracker) Predict(at time.Duration) []geom.Box {
	out := make([]geom.Box, len(tr.tracks))
	for i, t := range tr.tracks {
		out[i] = t.predictedBox(at)
	}
	return out
}
