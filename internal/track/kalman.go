package track

// kalman1D is a constant-velocity Kalman filter over one ground-plane
// axis: state (position, velocity), measurement (position). Two
// independent instances track x and y — the axes are uncoupled under the
// constant-velocity model, and two 2×2 filters keep every operation in
// closed form with a fixed evaluation order, which the episode engine's
// byte-for-byte determinism relies on.
type kalman1D struct {
	p, v float64 // state estimate

	// covariance (symmetric 2×2)
	ppp, ppv, pvv float64
}

// newKalman1D initialises a filter at the measured position with unknown
// velocity: position variance starts at the measurement variance and
// velocity variance at velVar.
func newKalman1D(pos, measVar, velVar float64) kalman1D {
	return kalman1D{p: pos, ppp: measVar, pvv: velVar}
}

// predictState returns the state extrapolated dt seconds ahead without
// mutating the filter — the association gate uses it to place the
// track's box at the incoming frame's timestamp.
func (k kalman1D) predictState(dt float64) (pos, vel float64) {
	return k.p + k.v*dt, k.v
}

// predict advances the filter dt seconds with process noise q (variance
// of the white acceleration, discretised with the standard piecewise-
// constant model).
func (k *kalman1D) predict(dt, q float64) {
	k.p += k.v * dt

	// P = F P Fᵀ + Q
	ppp := k.ppp + dt*(k.ppv+k.ppv) + dt*dt*k.pvv
	ppv := k.ppv + dt*k.pvv
	pvv := k.pvv

	dt2 := dt * dt
	k.ppp = ppp + q*dt2*dt2/4
	k.ppv = ppv + q*dt2*dt/2
	k.pvv = pvv + q*dt2
}

// update folds in a position measurement with variance r.
func (k *kalman1D) update(meas, r float64) {
	s := k.ppp + r
	if s <= 0 {
		return
	}
	gp := k.ppp / s // Kalman gain, position row
	gv := k.ppv / s // Kalman gain, velocity row

	innov := meas - k.p
	k.p += gp * innov
	k.v += gv * innov

	// P = (I - G H) P
	ppp := (1 - gp) * k.ppp
	ppv := (1 - gp) * k.ppv
	pvv := k.pvv - gv*k.ppv
	k.ppp, k.ppv, k.pvv = ppp, ppv, pvv
}
