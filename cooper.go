// Package cooper is a Go implementation of Cooper — cooperative
// perception for connected autonomous vehicles based on 3D point clouds
// (Chen, Tang, Yang, Fu; ICDCS 2019).
//
// Cooper lets a vehicle merge its own LiDAR sensing with raw point clouds
// received from nearby vehicles: clouds are aligned with GPS/IMU rigid
// transforms, merged at the data level, and fed to the SPOD detector,
// which keeps working on sparse (16-beam) data. Merging extends the
// sensing area, raises detection confidence and recovers objects neither
// vehicle could detect alone — while the exchanged data fits DSRC-class
// vehicular network bandwidth.
//
// The package is a facade over the implementation packages:
//
//	geom        3D math: rotations (Eq. 1), rigid transforms (Eq. 3), boxes, IoU
//	pointcloud  clouds, merging (Eq. 2), filters, wire codecs
//	lidar       spinning multi-beam LiDAR simulation (VLP-16 … HDL-64E)
//	scene       procedural road and parking scenes, paper scenarios
//	spod        the SPOD 3D car detector (spherical preprocessing, voxel
//	            features, sparse convolution, RPN-style proposals, NMS)
//	fusion      GPS/IMU alignment, drift model, ICP refinement
//	roi         region-of-interest extraction and background subtraction
//	network     DSRC channel model, wire messages, TCP transport
//	hub         fleet hub: concurrent sessions, frame cache, fusion rounds
//	core        vehicles, exchange packages, cooperative detection
//	eval        matching, detection matrices, accuracy, CDFs
//
// A minimal cooperative round trip:
//
//	rx := cooper.NewVehicle("rx", cooper.VLP16(), rxState, 1)
//	tx := cooper.NewVehicle("tx", cooper.VLP16(), txState, 2)
//	rx.Sense(targets, 0)
//	tx.Sense(targets, 0)
//	pkg, _ := tx.PreparePackage(nil)
//	dets, _, _ := rx.CooperativeDetect(pkg)
package cooper

import (
	"io"

	"cooper/internal/core"
	"cooper/internal/eval"
	"cooper/internal/fusion"
	"cooper/internal/geom"
	"cooper/internal/hub"
	"cooper/internal/lidar"
	"cooper/internal/network"
	"cooper/internal/pointcloud"
	"cooper/internal/scene"
	"cooper/internal/spod"
	"cooper/internal/store"
	"cooper/internal/telemetry"
	"cooper/internal/track"
)

// Geometry types.
type (
	// Vec3 is a 3D vector in metres.
	Vec3 = geom.Vec3
	// Box is an upright oriented 3D bounding box.
	Box = geom.Box
	// Transform is a rigid transform (rotation + translation, Eq. 3).
	Transform = geom.Transform
)

// Point-cloud types.
type (
	// Cloud is a LiDAR point cloud.
	Cloud = pointcloud.Cloud
	// Point is one LiDAR return.
	Point = pointcloud.Point
)

// Sensing and scene types.
type (
	// LiDARConfig describes a LiDAR device model.
	LiDARConfig = lidar.Config
	// LiDARTarget is scene geometry a ray can hit.
	LiDARTarget = lidar.Target
	// Scene is a collection of world objects.
	Scene = scene.Scene
	// Scenario is a complete evaluation setup from the paper.
	Scenario = scene.Scenario
)

// Cooper system types.
type (
	// Vehicle is a connected autonomous vehicle.
	Vehicle = core.Vehicle
	// VehicleState is a GPS/IMU pose report.
	VehicleState = fusion.VehicleState
	// ExchangePackage is the §II-D exchange unit: encoded cloud + state.
	ExchangePackage = core.ExchangePackage
	// Detection is one detected car with its confidence score.
	Detection = spod.Detection
	// Detector runs the SPOD pipeline.
	Detector = spod.Detector
	// DetectorConfig parameterises SPOD.
	DetectorConfig = spod.Config
	// DetectorStats is per-stage instrumentation of one detection pass.
	DetectorStats = spod.Stats
	// DetectorScratch owns a detection pass's reusable buffers; hold one
	// per goroutine and thread it through DetectWithScratch for
	// allocation-free steady-state detection.
	DetectorScratch = spod.DetectorScratch
	// DriftMode selects a Fig. 10 GPS skew regime.
	DriftMode = fusion.DriftMode
	// CaseOutcome is a full single-vs-cooperative case evaluation.
	CaseOutcome = core.CaseOutcome
	// ScenarioRunner evaluates a scenario's cooperative cases.
	ScenarioRunner = core.ScenarioRunner
	// RunOptions adjusts a case run (drift injection, ICP, ROI filter).
	RunOptions = core.RunOptions
	// Cell is one entry of a detection matrix (score / miss / out of area).
	Cell = eval.Cell
)

// LiDAR device presets.
func VLP16() LiDARConfig { return lidar.VLP16() }

// HDL32 returns the 32-beam Velodyne HDL-32E model.
func HDL32() LiDARConfig { return lidar.HDL32() }

// HDL64 returns the 64-beam Velodyne HDL-64E model (the KITTI sensor).
func HDL64() LiDARConfig { return lidar.HDL64() }

// NewVehicle creates a vehicle with the given LiDAR and pose; the seed
// fixes sensing noise for reproducibility.
func NewVehicle(id string, cfg LiDARConfig, state VehicleState, seed int64) *Vehicle {
	return core.NewVehicle(id, cfg, state, seed)
}

// NewScene returns an empty world with ground at z = 0.
func NewScene() *Scene { return scene.New() }

// KITTIScenarios returns the paper's four 64-beam road scenarios (Fig. 3).
func KITTIScenarios() []*Scenario { return scene.KITTIScenarios() }

// TJScenarios returns the paper's four 16-beam parking scenarios (Fig. 6).
func TJScenarios() []*Scenario { return scene.TJScenarios() }

// AllScenarios returns the full 19-case evaluation suite.
func AllScenarios() []*Scenario { return scene.AllScenarios() }

// Procedural fleet-scenario generation.
type (
	// ScenarioFamily names a generated scenario family (highway,
	// intersection, roundabout, parking, platoon).
	ScenarioFamily = scene.Family
	// GenParams parameterizes procedural scenario generation.
	GenParams = scene.GenParams
)

// ScenarioFamilies returns every generated scenario family.
func ScenarioFamilies() []ScenarioFamily { return scene.Families() }

// GenerateScenario synthesizes a deterministic N-vehicle fleet scenario:
// same params, byte-identical world. Fleet ≥ 2 wires one N-way case in
// which pose 0 fuses every other vehicle's transmitted cloud.
func GenerateScenario(p GenParams) (*Scenario, error) { return scene.Generate(p) }

// NewScenarioRunner prepares a scenario for case-by-case evaluation.
func NewScenarioRunner(sc *Scenario) *core.ScenarioRunner {
	return core.NewScenarioRunner(sc)
}

// DefaultDetectorConfig returns the SPOD configuration used in the
// paper's evaluation.
func DefaultDetectorConfig() DetectorConfig { return spod.DefaultConfig() }

// NewDetector builds a SPOD detector.
func NewDetector(cfg DetectorConfig) *Detector { return spod.New(cfg) }

// NewDetectorScratch returns an empty detector scratch for reuse-driven
// detection loops.
func NewDetectorScratch() *DetectorScratch { return spod.NewScratch() }

// Align maps a transmitter's cloud into the receiver's sensor frame
// using both vehicles' GPS/IMU states (Eqs. 1 and 3).
func Align(receiver, transmitter VehicleState, cloud *Cloud) *Cloud {
	return fusion.Align(receiver, transmitter, cloud)
}

// Merge unions a receiver's cloud with aligned transmitter clouds (Eq. 2).
func Merge(receiverCloud *Cloud, aligned ...*Cloud) *Cloud {
	return fusion.Merge(receiverCloud, aligned...)
}

// Fuse aligns and merges in one step.
func Fuse(receiver, transmitter VehicleState, receiverCloud, transmitterCloud *Cloud) *Cloud {
	return fusion.Fuse(receiver, transmitter, receiverCloud, transmitterCloud)
}

// Fleet-hub serving layer.
type (
	// FleetHub is the concurrent cooperative-perception server: vehicle
	// sessions publish frames, fusion requests get K-sender rounds
	// assembled under the DSRC scheduler budget.
	FleetHub = hub.Hub
	// FleetHubConfig parameterises a hub.
	FleetHubConfig = hub.Config
	// HubClient is one vehicle's session with a fleet hub.
	HubClient = hub.Client
	// HubRoundFrame is one sender's contribution to an assembled round.
	HubRoundFrame = hub.RoundFrame
)

// NewFleetHub creates a fleet hub; serve it with ListenAndServe or Serve.
func NewFleetHub(cfg FleetHubConfig) *FleetHub { return hub.New(cfg) }

// JoinFleetHub dials a hub and opens a vehicle session.
func JoinFleetHub(addr, id string, state VehicleState) (*HubClient, int, error) {
	return hub.Connect(addr, id, state)
}

// Dynamic-world engine: trajectories, streaming episodes and
// latency-compensated tracking.
type (
	// Motion moves a scenario body: constant velocity or waypoint path.
	Motion = scene.Motion
	// EpisodeOptions parameterises a multi-frame episode run.
	EpisodeOptions = core.EpisodeOptions
	// EpisodeFrame is one fused frame's outcome.
	EpisodeFrame = core.EpisodeFrame
	// EpisodeResult is a full episode with temporal track metrics.
	EpisodeResult = core.EpisodeResult
	// EpisodeLab caches captures across episode sweeps over one scenario.
	EpisodeLab = core.EpisodeLab
	// Tracker follows fused detections across frames (greedy-IoU
	// association + constant-velocity Kalman smoothing).
	Tracker = track.Tracker
	// TrackerConfig parameterises a Tracker.
	TrackerConfig = track.Config
	// Track is one tracked object.
	Track = track.Track
	// TemporalStats summarises an episode's tracking quality.
	TemporalStats = eval.TemporalStats
)

// RunEpisode plays a multi-frame episode over a (dynamic) scenario:
// per-frame sensing, scheduled DSRC broadcast, latency-compensated
// fusion and tracking.
func RunEpisode(sc *Scenario, opts EpisodeOptions) (*EpisodeResult, error) {
	return core.RunEpisode(sc, opts)
}

// NewEpisodeLab prepares a capture-caching episode runner for sweeps.
func NewEpisodeLab(sc *Scenario) *EpisodeLab { return core.NewEpisodeLab(sc) }

// NewTracker builds a detection tracker; zero config fields take
// defaults tuned for car-sized objects at cooperative frame rates.
func NewTracker(cfg TrackerConfig) *Tracker { return track.New(cfg) }

// GPS drift regimes of the Fig. 10 robustness experiment.
const (
	DriftNone     = fusion.DriftNone
	DriftBothAxes = fusion.DriftBothAxes
	DriftOneAxis  = fusion.DriftOneAxis
	DriftDouble   = fusion.DriftDouble
)

// MaxGPSDrift is the ≈10 cm positional error bound of integrated GPS/IMU.
const MaxGPSDrift = fusion.MaxGPSDrift

// Degraded-world models: seeded channel loss and localization drift.
type (
	// LossModel is a deterministic lossy-channel model: per-slot drops,
	// burst-loss episodes and bounded reordering, all drawn from hashed
	// (seed, round, slot) coordinates so outcomes are independent of
	// evaluation order and worker count. The zero value is lossless.
	LossModel = network.LossModel
	// LossyPlan is a broadcast plan after the loss model has passed
	// judgment on each slot.
	LossyPlan = network.LossyPlan
	// PoseError is one step of a localization-drift walk: the offset a
	// vehicle's reported pose carries off its true pose.
	PoseError = scene.PoseError
)

// DefaultLoss derives a full channel model (drops, bursts, reordering)
// from a single loss rate; Enabled() is false at rate 0.
func DefaultLoss(rate float64, seed int64) LossModel { return network.DefaultLoss(rate, seed) }

// DriftWalk precomputes a vehicle's seeded pose-error walk: frames
// bounded steps, positions clamped to the given bound in metres.
func DriftWalk(seed int64, bound float64, frames int) []PoseError {
	return scene.DriftWalk(seed, bound, frames)
}

// Pluggable fusion backends: raw point-cloud exchange (the paper's
// strategy) and feature-level F-Cooper exchange (sparse post-convolution
// planes, an order of magnitude fewer bytes, fused by element-wise max).
type (
	// FusionBackend is a pluggable cooperative-fusion strategy: how a
	// sender frame becomes wire bytes and how a receiver turns collected
	// payloads into a detector input.
	FusionBackend = fusion.Backend
	// SensorFrame is one vehicle's contribution to an exchange as a
	// backend sees it.
	SensorFrame = fusion.SensorFrame
	// FusionPayload is one encoded sender contribution on the wire.
	FusionPayload = fusion.Payload
	// FusedInput is a backend's fused product, ready for detection.
	FusedInput = fusion.FusedInput
	// RawBackend transmits quantized clouds and merges them (Cooper).
	RawBackend = fusion.RawBackend
	// FeatureBackend transmits sparse feature planes (F-Cooper).
	FeatureBackend = fusion.FeatureBackend
	// FeatureFrame is a detector's sparse post-convolution feature planes.
	FeatureFrame = spod.FeatureFrame
)

// FusionBackends lists the selectable fusion backend names.
func FusionBackends() []string { return fusion.Backends() }

// ParseFusionBackend resolves a backend name ("raw", "feature").
func ParseFusionBackend(name string) (FusionBackend, error) { return fusion.ParseBackend(name) }

// NewFeatureBackend returns the feature backend with the default
// transmit floor (columns unable to clear the proposal gate are dropped
// at the sender).
func NewFeatureBackend() FeatureBackend { return fusion.DefaultFeatureBackend() }

// DecodeFeatureFrame parses a CPF3 feature-frame payload.
func DecodeFeatureFrame(data []byte) (*FeatureFrame, error) { return spod.DecodeFeatureFrame(data) }

// IsFeaturePayload reports whether wire bytes carry a CPF3 feature frame
// rather than a quantized point cloud.
func IsFeaturePayload(data []byte) bool { return spod.IsFeaturePayload(data) }

// Observability: deterministic telemetry counters and the persistent
// episode store. Metric values derive from sim-time and byte counts only
// (wall-clock lives solely in the snapshot envelope), and the episode
// log carries no timestamps at all — identical runs produce identical
// snapshots and identical logs at any worker count.
type (
	// MetricsRegistry is a registry of named counters, gauges and
	// fixed-bucket histograms. A nil registry is the disabled registry:
	// its handles are no-ops, so hot paths instrument unconditionally.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time capture of a registry,
	// renderable as JSON or Prometheus text. MaskEnvelope strips the
	// wall-clock envelope for byte-exact diffing.
	MetricsSnapshot = telemetry.Snapshot
	// MetricsSeries is an FTDC-style delta-compressed snapshot series
	// for long soak runs.
	MetricsSeries = telemetry.Series
	// EpisodeHeader opens an episode log: what ran, under which knobs.
	EpisodeHeader = store.Header
	// EpisodeWriter appends typed records (frames, rounds, detections,
	// tracks) to an episode log; safe for concurrent producers.
	EpisodeWriter = store.EpisodeWriter
	// StoredEpisode is a fully parsed episode log.
	StoredEpisode = store.Episode
	// StoredDetections is one frame's fused detections as recorded.
	StoredDetections = store.Detections
	// EpisodeDir is a directory of named episode logs (the hub's
	// replay-over-HTTP source).
	EpisodeDir = store.Dir
	// EpisodeReplayStats summarises a replay verification: how many
	// stored rounds reproduced their recorded detections byte for byte.
	EpisodeReplayStats = store.ReplayStats
)

// NewMetrics returns an empty telemetry registry.
func NewMetrics() *MetricsRegistry { return telemetry.New() }

// CreateEpisodeLog creates an episode log file and writes its header.
func CreateEpisodeLog(path string, h EpisodeHeader) (*EpisodeWriter, error) {
	return store.CreateEpisode(path, h)
}

// NewEpisodeLog starts an episode log on an arbitrary writer.
func NewEpisodeLog(w io.Writer, h EpisodeHeader) (*EpisodeWriter, error) {
	return store.NewEpisodeWriter(w, h)
}

// ReadEpisodeLog parses a stored episode log from disk.
func ReadEpisodeLog(path string) (*StoredEpisode, error) { return store.ReadEpisodeFile(path) }

// ReplayEpisodeLog pushes a stored episode back through the live fusion
// path and verifies every round against its recorded detections.
func ReplayEpisodeLog(ep *StoredEpisode) ([]StoredDetections, EpisodeReplayStats, error) {
	return store.ReplayEpisode(ep)
}

// OpenEpisodeDir opens (creating if needed) a directory of episode logs.
func OpenEpisodeDir(path string) (*EpisodeDir, error) { return store.OpenDir(path) }
