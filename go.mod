module cooper

go 1.24
