// ROI exchange: demonstrates the paper's networking story (§IV-G) with a
// real TCP transport. A serving vehicle shares region-of-interest
// extracts of its frame; the client compares the three ROI categories'
// payloads against DSRC capacity, then fuses the full frame and detects.
package main

import (
	"fmt"
	"log"

	"cooper"
	"cooper/internal/core"
	"cooper/internal/network"
	"cooper/internal/roi"
)

func main() {
	scenario := cooper.TJScenarios()[0]
	world := scenario.Scene

	// Two vehicles from the scenario.
	rx := makeVehicle(scenario, 0)
	tx := makeVehicle(scenario, 2)
	rx.Sense(world.Targets(), world.GroundZ)
	tx.Sense(world.Targets(), world.GroundZ)

	// The transmitter serves frames over TCP on an ephemeral local port.
	listener, err := network.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer listener.Close()
	go serve(tx, listener)

	// Compare the three ROI categories' payloads (Figs. 11–12).
	channel := network.DefaultDSRC()
	fmt.Println("ROI exchange categories (1 Hz):")
	for _, cat := range []roi.Category{roi.CategoryFullFrame, roi.CategoryFrontFOV, roi.CategoryLeadView} {
		bytes, err := roi.PayloadBytes(tx.Cloud(), cat)
		if err != nil {
			log.Fatal(err)
		}
		sched := network.ExchangeSchedule{RateHz: 1, FrameBytes: bytes, Directions: roi.Transmissions(cat)}
		fmt.Printf("  %-28s %6.2f Mbit/s  fits %v Mbit/s DSRC: %v\n",
			cat, sched.MbitPerSecond(), channel.DataRateMbps, sched.FitsChannel(channel))
	}

	// Fetch the full frame over the wire and fuse.
	conn, err := network.Dial(listener.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(network.Message{Type: network.MsgROIRequest, Sender: rx.ID, State: rx.State()}); err != nil {
		log.Fatal(err)
	}
	reply, err := conn.Receive()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreceived %d KB over TCP; transmit time on DSRC would be %v\n",
		len(reply.Payload)/1024, channel.TransmitTime(len(reply.Payload)).Round(1e6))

	single, _, err := rx.Detect()
	if err != nil {
		log.Fatal(err)
	}
	coop, _, err := rx.CooperativeDetect(core.ExchangePackage{
		SenderID: reply.Sender, State: reply.State, Payload: reply.Payload,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single shot %d cars -> cooperative %d cars\n", len(single), len(coop))
}

func makeVehicle(sc *cooper.Scenario, pose int) *cooper.Vehicle {
	p := sc.Poses[pose]
	return cooper.NewVehicle(sc.PoseLabels[pose], sc.LiDAR, cooper.VehicleState{
		GPS: p.T, Yaw: p.R.Yaw(), MountHeight: sc.LiDAR.MountHeight,
	}, sc.Seed+int64(pose)*997)
}

func serve(v *cooper.Vehicle, l *network.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		func() {
			defer conn.Close()
			if _, err := conn.Receive(); err != nil {
				return
			}
			pkg, err := v.PreparePackage(nil)
			if err != nil {
				return
			}
			_ = conn.Send(network.Message{
				Type: network.MsgFullScan, Sender: pkg.SenderID,
				State: pkg.State, Payload: pkg.Payload,
			})
		}()
	}
}
