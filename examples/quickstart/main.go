// Quickstart: two connected vehicles, one occluded car, one cooperative
// exchange. Demonstrates the full Cooper loop from the paper — sense,
// package, align, merge, detect — in under a screen of code.
package main

import (
	"fmt"
	"log"

	"cooper"
)

func main() {
	// A world: a car both vehicles can see, a truck, and a car hidden
	// behind the truck from the receiver's position.
	world := cooper.NewScene()
	world.AddCar(12, 3, 0)
	world.AddTruck(10, -2.5, 0)
	world.AddCar(22, -3.4, 0) // invisible from the origin

	// The receiver sits at the origin; the transmitter looks back from
	// beyond the hidden car.
	rx := cooper.NewVehicle("rx", cooper.VLP16(),
		cooper.VehicleState{GPS: cooper.Vec3{X: 0, Y: 0}, Yaw: 0}, 1)
	tx := cooper.NewVehicle("tx", cooper.VLP16(),
		cooper.VehicleState{GPS: cooper.Vec3{X: 34, Y: 0}, Yaw: 3.14159}, 2)

	rx.Sense(world.Targets(), world.GroundZ)
	tx.Sense(world.Targets(), world.GroundZ)

	// Single-shot perception: the receiver alone.
	single, _, err := rx.Detect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single shot: %d cars detected\n", len(single))

	// Cooperative perception: the transmitter shares its frame (§II-D
	// exchange package: quantized cloud + GPS/IMU state), the receiver
	// aligns (Eq. 1–3), merges (Eq. 2) and re-detects.
	pkg, err := tx.PreparePackage(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exchange payload: %d KB\n", pkg.PayloadBytes()/1024)

	coop, stats, err := rx.CooperativeDetect(pkg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cooperative: %d cars detected in %v\n", len(coop), stats.Total.Round(1e6))
	for _, d := range coop {
		fmt.Printf("  car at (%5.1f, %5.1f) score %.2f\n", d.Box.Center.X, d.Box.Center.Y, d.Score)
	}
}
