// GPS drift: reproduces the paper's Fig. 10 robustness experiment on one
// cooperative case — the same fusion run with the transmitter's GPS
// reading skewed to (and beyond) the known drift bound, with and without
// ICP refinement.
package main

import (
	"fmt"
	"log"

	"cooper"
)

func main() {
	scenario := cooper.TJScenarios()[3]
	runner := cooper.NewScenarioRunner(scenario)
	c := scenario.Cases[1]

	fmt.Printf("%s case %s — GPS drift robustness (bound ±%.0f cm)\n",
		scenario.Name, c.Name, cooper.MaxGPSDrift*100)

	modes := []struct {
		name string
		mode cooper.DriftMode
		icp  bool
	}{
		{"baseline", cooper.DriftNone, false},
		{"skew both axes", cooper.DriftBothAxes, false},
		{"skew one axis", cooper.DriftOneAxis, false},
		{"skew 2x (abnormal)", cooper.DriftDouble, false},
		{"skew 2x + ICP", cooper.DriftDouble, true},
	}

	baselineScores := map[int]float64{}
	for _, m := range modes {
		outcome, err := runner.RunCase(c, cooper.RunOptions{Drift: m.mode, DriftSeed: 7, UseICP: m.icp})
		if err != nil {
			log.Fatal(err)
		}
		detected, lost, sum, n := 0, 0, 0.0, 0
		for _, row := range outcome.Rows {
			if row.Coop.Detected() {
				detected++
				sum += row.Coop.Score
				n++
				if m.mode == cooper.DriftNone {
					baselineScores[row.CarID] = row.Coop.Score
				}
			} else if _, ok := baselineScores[row.CarID]; ok && m.mode != cooper.DriftNone {
				lost++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		fmt.Printf("  %-20s detected %2d  mean score %.3f  lost vs baseline %d\n",
			m.name, detected, mean, lost)
	}
	fmt.Println("\nAs in the paper: skewed scores cluster near the baseline; fusion is")
	fmt.Println("robust to GPS drift at and beyond the specified bound.")
}
