// Occlusion: runs the paper's T-junction scenario (Fig. 3, scenario 1)
// and prints the detection matrix — which cars each single shot finds,
// which only the cooperative merge recovers, and how the detection scores
// move.
package main

import (
	"fmt"
	"log"

	"cooper"
)

func main() {
	scenario := cooper.KITTIScenarios()[0] // T-junction
	runner := cooper.NewScenarioRunner(scenario)

	fmt.Printf("%s — %d-beam LiDAR, %d ground-truth cars, Δd = %.1f m\n",
		scenario.Name, scenario.LiDAR.BeamCount(), len(scenario.Scene.Cars()),
		scenario.DeltaD(scenario.Cases[0]))

	outcome, err := runner.RunCase(scenario.Cases[0], cooper.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %-8s %-8s %-8s %s\n", "car", "t1", "t2", "t1+t2", "distance")
	recovered := 0
	for _, row := range outcome.Rows {
		marker := ""
		if row.Coop.Detected() && !row.I.Detected() && !row.J.Detected() {
			marker = "  <- discovered only by fusion"
			recovered++
		}
		fmt.Printf("%-6d %-8s %-8s %-8s %-8s%s\n",
			row.CarID, row.I, row.J, row.Coop, row.Band, marker)
	}
	fmt.Printf("\npayload exchanged: %d KB; cooperative detection in %v\n",
		outcome.PayloadBytes/1024, outcome.StatsCoop.Total.Round(1e6))
	if recovered > 0 {
		fmt.Printf("%d cars were invisible to both single shots and recovered by raw-data fusion —\n", recovered)
		fmt.Println("object-level fusion could never have found them (paper §IV-D).")
	}
}
