package cooper_test

import (
	"math"
	"testing"

	"cooper"
)

// TestFacadeCooperativeLoop exercises the public API end to end: the
// README quickstart as an assertion — a car hidden from the receiver is
// detected after one cooperative exchange.
func TestFacadeCooperativeLoop(t *testing.T) {
	world := cooper.NewScene()
	world.AddCar(12, 3, 0)
	world.AddTruck(10, -2.5, 0)
	hiddenID := world.AddCar(22, -3.4, 0)

	rx := cooper.NewVehicle("rx", cooper.VLP16(),
		cooper.VehicleState{GPS: cooper.Vec3{}, Yaw: 0}, 1)
	tx := cooper.NewVehicle("tx", cooper.VLP16(),
		cooper.VehicleState{GPS: cooper.Vec3{X: 34}, Yaw: math.Pi}, 2)
	rx.Sense(world.Targets(), world.GroundZ)
	tx.Sense(world.Targets(), world.GroundZ)

	single, _, err := rx.Detect()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := tx.PreparePackage(nil)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.PayloadBytes() == 0 {
		t.Fatal("empty exchange payload")
	}
	coop, stats, err := rx.CooperativeDetect(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(coop) <= len(single) {
		t.Errorf("cooperative %d ≤ single %d detections", len(coop), len(single))
	}
	if stats.Total <= 0 {
		t.Error("detection stats missing")
	}

	hidden, _ := world.ObjectByID(hiddenID)
	found := false
	for _, d := range coop {
		if d.Box.Center.DistXY(hidden.Box.Center) < 1.5 {
			found = true
		}
	}
	if !found {
		t.Error("hidden car not recovered through the public API")
	}
}

func TestFacadeScenarios(t *testing.T) {
	if got := len(cooper.KITTIScenarios()); got != 4 {
		t.Errorf("KITTI scenarios = %d", got)
	}
	if got := len(cooper.TJScenarios()); got != 4 {
		t.Errorf("TJ scenarios = %d", got)
	}
	cases := 0
	for _, sc := range cooper.AllScenarios() {
		cases += len(sc.Cases)
	}
	if cases != 19 {
		t.Errorf("total cooperative cases = %d, want 19 (paper §IV-A)", cases)
	}
}

func TestFacadeAlignMerge(t *testing.T) {
	rxState := cooper.VehicleState{GPS: cooper.Vec3{}, Yaw: 0, MountHeight: 1.73}
	txState := cooper.VehicleState{GPS: cooper.Vec3{X: 10}, Yaw: 0, MountHeight: 1.73}
	var cloud cooper.Cloud
	cloud.AppendXYZR(1, 0, 0, 0.5)

	aligned := cooper.Align(rxState, txState, &cloud)
	if math.Abs(aligned.At(0).X-11) > 1e-9 {
		t.Errorf("aligned x = %v, want 11", aligned.At(0).X)
	}
	var own cooper.Cloud
	own.AppendXYZR(0, 0, 0, 0.5)
	merged := cooper.Merge(&own, aligned)
	if merged.Len() != 2 {
		t.Errorf("merged len = %d", merged.Len())
	}
	fused := cooper.Fuse(rxState, txState, &own, &cloud)
	if fused.Len() != 2 {
		t.Errorf("fused len = %d", fused.Len())
	}
}

func TestFacadeDetectorConfig(t *testing.T) {
	cfg := cooper.DefaultDetectorConfig()
	if cfg.ScoreThreshold <= 0 || cfg.ScoreThreshold >= 1 {
		t.Errorf("score threshold = %v", cfg.ScoreThreshold)
	}
	det := cooper.NewDetector(cfg)
	var empty cooper.Cloud
	if dets := det.Detect(&empty); len(dets) != 0 {
		t.Error("empty cloud produced detections")
	}
}

func TestFacadeLiDARPresets(t *testing.T) {
	if cooper.VLP16().BeamCount() != 16 || cooper.HDL32().BeamCount() != 32 || cooper.HDL64().BeamCount() != 64 {
		t.Error("preset beam counts wrong")
	}
}
