// Command experiments regenerates the paper's evaluation figures.
//
//	experiments -fig 3      # one figure
//	experiments -all        # every figure, in order
//	experiments -list       # available figures
package main

import (
	"flag"
	"fmt"
	"os"

	"cooper/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.Int("fig", 0, "figure number to regenerate (2-13)")
	all := flag.Bool("all", false, "regenerate every figure")
	list := flag.Bool("list", false, "list available figures")
	workers := flag.Int("workers", 0, "max goroutines for the evaluation engine (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *list {
		fmt.Println("available figures:", experiments.Figures())
		return nil
	}

	suite := experiments.NewSuite().SetWorkers(*workers)
	switch {
	case *all:
		// Figure generators run concurrently; reports are emitted in
		// figure order and are identical to a sequential loop.
		return suite.RunAllFigures(os.Stdout)
	case *fig != 0:
		return experiments.Run(suite, *fig, os.Stdout)
	default:
		flag.Usage()
		return fmt.Errorf("specify -fig N, -all or -list")
	}
}
