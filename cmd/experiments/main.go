// Command experiments regenerates the paper's evaluation figures plus
// the fleet-scale sweep that goes beyond the paper.
//
//	experiments -fig 3                       # one figure
//	experiments -all                         # every figure, in order
//	experiments -list                        # available figures
//	experiments -fleet 2,4,6,8               # fleet sweep, all families
//	experiments -fleet 3,5 -scenario highway,platoon -seed 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cooper/internal/experiments"
	"cooper/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// parseFleets parses a comma-separated fleet-size list.
func parseFleets(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad fleet size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseFamilies parses a comma-separated family list; "" or "all" means
// every family.
func parseFamilies(s string) ([]scene.Family, error) {
	if s == "" || s == "all" {
		return scene.Families(), nil
	}
	var out []scene.Family
	for _, part := range strings.Split(s, ",") {
		f, ok := scene.ParseFamily(strings.TrimSpace(part))
		if !ok {
			return nil, fmt.Errorf("unknown scenario family %q (families: %v)", part, scene.Families())
		}
		out = append(out, f)
	}
	return out, nil
}

func run() error {
	fig := flag.Int("fig", 0, "figure number to regenerate (2-17)")
	all := flag.Bool("all", false, "regenerate every figure")
	list := flag.Bool("list", false, "list available figures")
	fleets := flag.String("fleet", "", "fleet sweep: comma-separated fleet sizes (e.g. 2,4,6,8)")
	families := flag.String("scenario", "", "fleet sweep: comma-separated generated families (default all)")
	seed := flag.Int64("seed", 1, "fleet sweep: generation + sensing seed")
	traffic := flag.Int("traffic", 0, "fleet sweep: ambient car count (0 = family default)")
	workers := flag.Int("workers", 0, "max goroutines for the evaluation engine (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *list {
		fmt.Println("available figures:", experiments.Figures())
		fmt.Println("generated families:", scene.Families())
		return nil
	}

	suite := experiments.NewSuite().SetWorkers(*workers)
	switch {
	case *fleets != "":
		sizes, err := parseFleets(*fleets)
		if err != nil {
			return err
		}
		fams, err := parseFamilies(*families)
		if err != nil {
			return err
		}
		cfg := experiments.DefaultFleetSweep()
		cfg.Fleets = sizes
		cfg.Families = fams
		cfg.Seed = *seed
		cfg.Traffic = *traffic
		return experiments.FleetSweep(suite, os.Stdout, cfg)
	case *all:
		// Figure generators run concurrently; reports are emitted in
		// figure order and are identical to a sequential loop.
		return suite.RunAllFigures(os.Stdout)
	case *fig != 0:
		return experiments.Run(suite, *fig, os.Stdout)
	default:
		flag.Usage()
		return fmt.Errorf("specify -fig N, -all, -fleet SIZES or -list")
	}
}
