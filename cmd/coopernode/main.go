// Command coopernode demonstrates Cooper over a real network transport:
// a serving vehicle shares its LiDAR frames over TCP, and a requesting
// vehicle fetches them, fuses and detects.
//
//	coopernode -serve 127.0.0.1:7777 -scenario "TJ-Scenario 1" -pose 1
//	coopernode -connect 127.0.0.1:7777 -scenario "TJ-Scenario 1" -pose 0
package main

import (
	"flag"
	"fmt"
	"os"

	"cooper/internal/core"
	"cooper/internal/fusion"
	"cooper/internal/network"
	"cooper/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coopernode:", err)
		os.Exit(1)
	}
}

func run() error {
	serve := flag.String("serve", "", "address to serve a vehicle's frames on")
	connect := flag.String("connect", "", "address of a serving vehicle")
	scenarioName := flag.String("scenario", "TJ-Scenario 1", "scenario providing world and poses")
	pose := flag.Int("pose", 0, "pose index this node embodies")
	flag.Parse()

	var sc *scene.Scenario
	for _, s := range scene.AllScenarios() {
		if s.Name == *scenarioName {
			sc = s
			break
		}
	}
	if sc == nil {
		return fmt.Errorf("unknown scenario %q", *scenarioName)
	}
	if *pose < 0 || *pose >= len(sc.Poses) {
		return fmt.Errorf("pose %d out of range (scenario has %d)", *pose, len(sc.Poses))
	}

	vehicle := makeVehicle(sc, *pose)
	vehicle.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)

	switch {
	case *serve != "":
		return serveVehicle(vehicle, *serve)
	case *connect != "":
		return requestAndFuse(vehicle, *connect)
	default:
		return fmt.Errorf("specify -serve or -connect")
	}
}

func makeVehicle(sc *scene.Scenario, pose int) *core.Vehicle {
	p := sc.Poses[pose]
	state := fusion.VehicleState{
		GPS:         p.T,
		Yaw:         p.R.Yaw(),
		MountHeight: sc.LiDAR.MountHeight,
	}
	return core.NewVehicle(sc.PoseLabels[pose], sc.LiDAR, state, sc.Seed+int64(pose)*997)
}

func serveVehicle(v *core.Vehicle, addr string) error {
	l, err := network.Listen(addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("%s serving frames on %s\n", v.ID, l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if err := serveOne(v, conn); err != nil {
			fmt.Fprintln(os.Stderr, "serving:", err)
		}
	}
}

func serveOne(v *core.Vehicle, conn *network.Transport) error {
	defer conn.Close()
	req, err := conn.Receive()
	if err != nil {
		return err
	}
	fmt.Printf("request from %s (type %d)\n", req.Sender, req.Type)
	pkg, err := v.PreparePackage(nil)
	if err != nil {
		return err
	}
	return conn.Send(network.Message{
		Type:    network.MsgFullScan,
		Sender:  pkg.SenderID,
		State:   pkg.State,
		Payload: pkg.Payload,
	})
}

func requestAndFuse(v *core.Vehicle, addr string) error {
	conn, err := network.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	if err := conn.Send(network.Message{Type: network.MsgROIRequest, Sender: v.ID, State: v.State()}); err != nil {
		return err
	}
	reply, err := conn.Receive()
	if err != nil {
		return err
	}
	fmt.Printf("received %d KB frame from %s\n", len(reply.Payload)/1024, reply.Sender)

	singles, _, err := v.Detect()
	if err != nil {
		return err
	}
	pkg := core.ExchangePackage{SenderID: reply.Sender, State: reply.State, Payload: reply.Payload}
	coop, stats, err := v.CooperativeDetect(pkg)
	if err != nil {
		return err
	}
	fmt.Printf("single shot: %d cars; cooperative: %d cars (detection %v)\n",
		len(singles), len(coop), stats.Total.Round(1e6))
	for _, d := range coop {
		fmt.Printf("  car at (%6.1f, %6.1f) score %.2f\n", d.Box.Center.X, d.Box.Center.Y, d.Score)
	}
	return nil
}
