// Command coopernode runs Cooper over a real network transport, in two
// generations. The original 1:1 protocol pairs one serving and one
// requesting vehicle:
//
//	coopernode -serve 127.0.0.1:7777 -scenario "TJ-Scenario 1" -pose 1
//	coopernode -connect 127.0.0.1:7777 -scenario "TJ-Scenario 1" -pose 0
//
// The fleet hub serves many concurrent vehicles: it caches every
// vehicle's latest frame and assembles K-sender fusion rounds on demand,
// fitting payloads under an advertised bandwidth cap:
//
//	coopernode -hub 127.0.0.1:7777
//	coopernode -join 127.0.0.1:7777 -scenario platoon -fleet 4 -seed 7 -pose 1
//	coopernode -join 127.0.0.1:7777 -scenario platoon -fleet 4 -seed 7 -pose 0 -bw 2.0
//
// -selftest K spins the whole thing — hub plus K clients — inside one
// process from a generated scenario and prints a deterministic fused
// precision/recall and modelled round-latency report:
//
//	coopernode -selftest 4 -seed 7
//
// The selftest can be degraded: -loss R drops published frames on the
// hub ingress at a seeded rate (receivers fall back to each sender's
// newest cached frame, flagged stale in the report), and -drift M walks
// every vehicle's reported pose off truth by up to M metres:
//
//	coopernode -selftest 3 -seed 5 -frames 4 -loss 0.4 -drift 0.6
//
// Both the hub and the selftest can expose the observability surface:
// -http ADDR serves live stats, Prometheus metrics, pprof and episode
// replay over HTTP; -store PATH records a replayable episode log
// (selftest) or names the episode directory served at /episodes (hub);
// -linger D keeps the selftest's hub and API up after the report:
//
//	coopernode -selftest 3 -seed 5 -http 127.0.0.1:8777 -store /tmp/run.ceplog -linger 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cooper/internal/core"
	"cooper/internal/fusion"
	"cooper/internal/hub"
	"cooper/internal/network"
	"cooper/internal/scene"
	"cooper/internal/store"
	"cooper/internal/telemetry"
)

// defaultScenario is the -scenario flag default, the 1:1 demo scenario.
const defaultScenario = "TJ-Scenario 1"

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coopernode:", err)
		os.Exit(1)
	}
}

func run() error {
	serve := flag.String("serve", "", "1:1 mode: address to serve this vehicle's frames on")
	connect := flag.String("connect", "", "1:1 mode: address of a serving vehicle")
	hubAddr := flag.String("hub", "", "hub mode: address to run the fleet hub on")
	join := flag.String("join", "", "client mode: address of a fleet hub to join")
	selftest := flag.Int("selftest", 0, "run an in-process hub with K clients and print a deterministic report")
	scenarioName := flag.String("scenario", defaultScenario, "scenario name or generated family")
	pose := flag.Int("pose", 0, "pose index this node embodies")
	fleet := flag.Int("fleet", 4, "fleet size for generated families (and -selftest)")
	seed := flag.Int64("seed", 1, "generation + sensing seed for generated families")
	traffic := flag.Int("traffic", 0, "ambient car count for generated families (0 = family default)")
	bw := flag.Float64("bw", 0, "advertised bandwidth cap, Mbit/s (0 = uncapped)")
	k := flag.Int("k", 0, "max senders per fusion round (0 = hub default / whole fleet)")
	workers := flag.Int("workers", 0, "selftest client fan-out goroutines (0 = one per CPU); output identical at any value")
	frames := flag.Int("frames", 1, "selftest: stream this many frames of the moving world through the hub")
	hz := flag.Float64("hz", 2, "selftest streaming frame rate")
	backendName := flag.String("backend", "raw", "fusion backend for -selftest and -join: raw (point clouds) or feature (F-Cooper sparse planes)")
	wire := flag.String("wire", "v2", "publish wire for -selftest and -join: v2 (self-contained quantized frames) or v3 (CPD1 delta stream)")
	loss := flag.Float64("loss", 0, "selftest: publish loss rate in [0,1) — seeded drops on the hub ingress")
	drift := flag.Float64("drift", 0, "selftest: per-vehicle pose-walk bound in metres on every reported state")
	httpAddr := flag.String("http", "", "serve the stats/replay API on this address (selftest and hub modes)")
	storePath := flag.String("store", "", "selftest: record a replayable episode log to this file; hub: episode directory served at /episodes")
	linger := flag.Duration("linger", 0, "selftest: keep the hub (and -http API) alive this long after the report")
	flag.Parse()

	backend, err := fusion.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	switch *wire {
	case "v2", "v3":
	default:
		return fmt.Errorf("unknown wire %q (want v2 or v3)", *wire)
	}

	switch {
	case *selftest > 0:
		family, err := familyOf(*scenarioName)
		if err != nil {
			return err
		}
		if *loss < 0 || *loss >= 1 {
			return fmt.Errorf("-loss %g out of range [0,1)", *loss)
		}
		opts := hub.SelfTestOptions{
			Family:        family,
			Fleet:         *selftest,
			Seed:          *seed,
			Traffic:       *traffic,
			Workers:       *workers,
			BandwidthMbps: *bw,
			MaxSenders:    *k,
			Frames:        *frames,
			Hz:            *hz,
			Backend:       backend,
			Wire:          *wire,
			Drift:         *drift,
			Metrics:       telemetry.New(),
			HTTPAddr:      *httpAddr,
			Linger:        *linger,
		}
		if *loss > 0 {
			opts.Loss = network.DefaultLoss(*loss, *seed)
		}
		if *storePath != "" {
			headerFamily := family
			if headerFamily == "" {
				headerFamily = string(scene.FamilyPlatoon) // hub.SelfTest's default
			}
			ew, err := store.CreateEpisode(*storePath, store.Header{
				Label: "selftest", Scenario: headerFamily, Seed: *seed,
				Frames: *frames, Hz: *hz, Backend: backend.Name(), Wire: *wire,
			})
			if err != nil {
				return err
			}
			opts.Store = ew
			if err := hub.SelfTest(os.Stdout, opts); err != nil {
				ew.Close()
				return err
			}
			if err := ew.Close(); err != nil {
				return err
			}
			fmt.Printf("episode log: %s (%d records)\n", *storePath, ew.Records())
			return nil
		}
		return hub.SelfTest(os.Stdout, opts)
	case *hubAddr != "":
		return runHub(*hubAddr, *httpAddr, *storePath)
	case *join != "":
		sc, err := resolve(*scenarioName, *fleet, *seed, *traffic)
		if err != nil {
			return err
		}
		v, err := makeVehicle(sc, *pose)
		if err != nil {
			return err
		}
		return joinHub(v, sc, *join, *k, *bw, backend, *wire)
	case *serve != "":
		sc, err := resolve(*scenarioName, *fleet, *seed, *traffic)
		if err != nil {
			return err
		}
		v, err := makeVehicle(sc, *pose)
		if err != nil {
			return err
		}
		return serveVehicle(v, *serve)
	case *connect != "":
		sc, err := resolve(*scenarioName, *fleet, *seed, *traffic)
		if err != nil {
			return err
		}
		v, err := makeVehicle(sc, *pose)
		if err != nil {
			return err
		}
		return requestAndFuse(v, *connect)
	default:
		return fmt.Errorf("specify one of -hub, -join, -selftest K, -serve or -connect")
	}
}

// familyOf resolves the -scenario flag for selftest mode, which only
// accepts generated families. The untouched flag default falls through
// to the selftest's own default family; anything else unknown is an
// error, not a silent fallback.
func familyOf(name string) (string, error) {
	if _, ok := scene.ParseFamily(name); ok {
		return name, nil
	}
	if name == defaultScenario {
		return "", nil // hub.SelfTest defaults to platoon
	}
	return "", fmt.Errorf("-selftest needs a generated family (%v), got %q", scene.Families(), name)
}

// resolve finds the named paper scenario or generates the named family.
func resolve(name string, fleet int, seed int64, traffic int) (*scene.Scenario, error) {
	if fam, ok := scene.ParseFamily(name); ok {
		return scene.Generate(scene.GenParams{Family: fam, Fleet: fleet, Seed: seed, Traffic: traffic})
	}
	for _, sc := range scene.AllScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q", name)
}

func makeVehicle(sc *scene.Scenario, pose int) (*core.Vehicle, error) {
	if pose < 0 || pose >= len(sc.Poses) {
		return nil, fmt.Errorf("pose %d out of range (scenario has %d)", pose, len(sc.Poses))
	}
	v := core.PoseVehicle(sc, pose)
	v.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)
	return v, nil
}

// runHub serves the fleet hub until interrupted, with the stats API and
// episode-replay surface attached when configured.
func runHub(addr, httpAddr, storeDir string) error {
	l, err := network.Listen(addr)
	if err != nil {
		return err
	}
	cfg := hub.Config{
		Logf: func(format string, args ...any) {
			fmt.Printf("hub: "+format+"\n", args...)
		},
		Metrics:  telemetry.New(),
		HTTPAddr: httpAddr,
	}
	if storeDir != "" {
		d, err := store.OpenDir(storeDir)
		if err != nil {
			return err
		}
		cfg.Episodes = d
	}
	h := hub.New(cfg)
	if _, err := h.StartHTTP(); err != nil {
		l.Close()
		return err
	}
	fmt.Printf("fleet hub listening on %s\n", l.Addr())
	return h.Serve(l)
}

// joinHub runs one vehicle's hub session: publish the sensed frame
// through the chosen fusion backend, then request a fusion round and
// detect on the fused input.
func joinHub(v *core.Vehicle, sc *scene.Scenario, addr string, k int, bwMbps float64, backend fusion.Backend, wire string) error {
	feature := backend.Name() == "feature"
	if wire == "v3" && feature {
		return fmt.Errorf("-wire v3 delta-codes point-cloud frames; the feature backend publishes CPF3")
	}
	cl, peers, err := hub.Connect(addr, v.ID, v.State())
	if err != nil {
		return err
	}
	defer cl.Close()
	fmt.Printf("%s joined hub at %s (%d vehicle(s) already cached)\n", v.ID, addr, peers)

	sensorFrame, err := v.SensorFrame(nil)
	if err != nil {
		return err
	}
	var cached, sent int
	switch {
	case wire == "v3":
		// The node's first publish opens a CPD1 stream (a keyframe); a
		// long-lived node would keep the session and delta-code follow-ups.
		cached, sent, err = cl.PublishDelta(v.State(), sensorFrame.Cloud)
	case feature:
		var p fusion.Payload
		p, err = backend.Encode(sensorFrame, nil)
		if err == nil {
			sent = len(p.Data)
			cached, err = cl.PublishFeatures(v.State(), p.Data)
		}
	default:
		var p fusion.Payload
		p, err = backend.Encode(sensorFrame, nil)
		if err == nil {
			sent = len(p.Data)
			cached, err = cl.Publish(v.State(), p.Data)
		}
	}
	if err != nil {
		return err
	}
	label := backend.Name()
	if wire == "v3" {
		label += " (v3 delta stream)"
	}
	fmt.Printf("published %d KB %s frame; hub now caches %d vehicle(s)\n", sent/1024, label, cached)

	var frames []hub.RoundFrame
	if feature {
		frames, err = cl.RequestFeatureRound(v.State(), k, uint64(bwMbps*1e6))
	} else {
		frames, err = cl.RequestRound(v.State(), k, uint64(bwMbps*1e6))
	}
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		fmt.Println("no peers cached yet — join more vehicles, then request again")
		return nil
	}

	senders := make([]string, len(frames))
	payloads := make([]fusion.Payload, len(frames))
	sizes := make([]int, len(frames))
	total := 0
	for i, f := range frames {
		senders[i] = f.Sender
		payloads[i] = fusion.Payload{SenderID: f.Sender, State: f.State, Data: f.Payload}
		sizes[i] = len(f.Payload)
		total += len(f.Payload)
	}
	plan := network.DefaultScheduler().Plan(sizes)
	fmt.Printf("fusion round: %d frame(s) from %s, %d KB, modelled latency %v (load %.2f Mbit/s, fits %v)\n",
		len(frames), strings.Join(senders, "+"), total/1024,
		plan.Completion().Round(1e5), plan.MbitPerSecond(), plan.Fits())

	singles, _, err := v.Detect()
	if err != nil {
		return err
	}
	in, err := backend.Fuse(sensorFrame, payloads)
	if err != nil {
		return err
	}
	coop, _ := in.Detect(sensorFrame.Detector.Config(), nil)
	fmt.Printf("single shot: %d cars; cooperative: %d cars\n", len(singles), len(coop))
	for _, d := range coop {
		fmt.Printf("  car at (%6.1f, %6.1f) score %.2f\n", d.Box.Center.X, d.Box.Center.Y, d.Score)
	}
	return nil
}

// --- original 1:1 protocol ---
//
// The wire exchange is unchanged from the pre-hub coopernode; the node's
// detector is now configured through core.PoseVehicle, so its range gate
// matches the evaluation runner's (45 m on 16-beam T&J data, 70 m on
// 64-beam KITTI data) instead of the old fixed default.

func serveVehicle(v *core.Vehicle, addr string) error {
	l, err := network.Listen(addr)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("%s serving frames on %s\n", v.ID, l.Addr())
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		if err := serveOne(v, conn); err != nil {
			fmt.Fprintln(os.Stderr, "serving:", err)
		}
	}
}

func serveOne(v *core.Vehicle, conn *network.Transport) error {
	defer conn.Close()
	req, err := conn.Receive()
	if err != nil {
		return err
	}
	fmt.Printf("request from %s (type %d)\n", req.Sender, req.Type)
	pkg, err := v.PreparePackage(nil)
	if err != nil {
		return err
	}
	return conn.Send(network.Message{
		Type:    network.MsgFullScan,
		Sender:  pkg.SenderID,
		State:   pkg.State,
		Payload: pkg.Payload,
	})
}

func requestAndFuse(v *core.Vehicle, addr string) error {
	conn, err := network.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	if err := conn.Send(network.Message{Type: network.MsgROIRequest, Sender: v.ID, State: v.State()}); err != nil {
		return err
	}
	reply, err := conn.Receive()
	if err != nil {
		return err
	}
	if reply.Type == network.MsgError {
		return fmt.Errorf("peer error: %s", reply.Payload)
	}
	fmt.Printf("received %d KB frame from %s\n", len(reply.Payload)/1024, reply.Sender)

	singles, _, err := v.Detect()
	if err != nil {
		return err
	}
	pkg := core.ExchangePackage{SenderID: reply.Sender, State: reply.State, Payload: reply.Payload}
	coop, stats, err := v.CooperativeDetect(pkg)
	if err != nil {
		return err
	}
	fmt.Printf("single shot: %d cars; cooperative: %d cars (detection %v)\n",
		len(singles), len(coop), stats.Total.Round(1e6))
	for _, d := range coop {
		fmt.Printf("  car at (%6.1f, %6.1f) score %.2f\n", d.Box.Center.X, d.Box.Center.Y, d.Score)
	}
	return nil
}
