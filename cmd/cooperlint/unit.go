package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"

	"cooper/internal/lint"
)

// vetConfig is the JSON unit-checker configuration the go command
// writes for each package when a -vettool is set. The field set (and
// the protocol: analyze cfg.GoFiles, resolve imports through
// cfg.PackageFile, write a facts file to cfg.VetxOutput, exit nonzero
// on diagnostics) matches x/tools' unitchecker, which go vet was built
// against.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit described by a vet config file.
// The exit protocol mirrors unitchecker: 0 clean, 1 tool failure,
// 2 diagnostics.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cooperlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cooperlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The suite exports no cross-package facts, so the facts file the
	// go command caches (and feeds to dependents as PackageVetx) is
	// always empty — but it must exist for the cache protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cooperlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no analysis
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "cooperlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	tpkg, info, err := lint.CheckTypes(fset, cfg.ImportPath, files, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cooperlint: %v\n", err)
		return 1
	}

	pkg := &lint.Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
	}
	findings := lint.Findings(lint.Run(pkg, lint.Analyzers()))
	for _, s := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", s.Pos.Filename, s.Pos.Line, s.Pos.Column, s.Analyzer, s.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
