// Command cooperlint runs Cooper's determinism lint suite
// (internal/lint): maporder, wallclock, randsource and floatfold — the
// machine-checked form of the rules in docs/DETERMINISM.md.
//
// It runs three ways:
//
//	cooperlint ./...                # standalone: lint packages, exit 1 on findings
//	cooperlint -audit               # print the DETERMINISM.md audit table
//	go vet -vettool=$(which cooperlint) ./...   # as a vet tool
//
// The vettool mode speaks the go vet unit-checker protocol: the go
// command invokes the binary once per package with a JSON config file
// argument carrying the file list and the export data of every
// dependency, and expects -V=full / -flags handshakes. No part of the
// protocol needs anything outside the standard library.
//
// Audit mode regenerates the generated section of docs/DETERMINISM.md:
//
//	cooperlint -audit                          # table only, to stdout
//	cooperlint -audit -doc docs/DETERMINISM.md # whole doc, table spliced in
//	cooperlint -audit -doc docs/DETERMINISM.md -w  # rewrite the doc in place
//
// CI diffs the committed table against a fresh -audit run, so the audit
// can never drift from the code.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cooper/internal/lint"
)

// selfHash digests the running executable so the go vet result cache
// turns over with every rebuild of the tool.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

func main() {
	versionFlag := flag.String("V", "", "if 'full', print version and exit (go vet tool-ID handshake)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet handshake)")
	jsonFlag := flag.Bool("json", false, "accepted for go vet compatibility (ignored)")
	auditFlag := flag.Bool("audit", false, "collect every flagged-or-suppressed site and print the audit table")
	docFlag := flag.String("doc", "", "with -audit: splice the table between the cooperlint:audit markers of this document")
	writeFlag := flag.Bool("w", false, "with -audit -doc: rewrite the document in place instead of printing")
	flag.Parse()
	_ = *jsonFlag

	switch {
	case *versionFlag != "":
		// go vet identifies a -vettool by running it with -V=full and
		// caching on the reply, which must be "<name> version <ver> ...".
		// Folding the binary's own hash in invalidates that cache
		// whenever an analyzer changes.
		name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		fmt.Printf("%s version v1.0.0 buildID=%s\n", name, selfHash())
	case *flagsFlag:
		// go vet asks the tool which analyzer flags it supports.
		fmt.Println("[]")
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		os.Exit(runUnit(flag.Arg(0)))
	case *auditFlag:
		os.Exit(runAudit(*docFlag, *writeFlag, flag.Args()))
	default:
		os.Exit(runStandalone(flag.Args()))
	}
}

// runStandalone lints the given package patterns (default ./... from
// the module root) and prints every finding: open diagnostics, unused
// suppressions and malformed directives. Suppressed sites are silent —
// they are audit rows, not findings.
func runStandalone(patterns []string) int {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cooperlint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cooperlint:", err)
		return 1
	}
	findings := lint.Findings(lint.CollectAudit(pkgs, root))
	for _, s := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", s.Pos.Filename, s.Pos.Line, s.Pos.Column, s.Analyzer, s.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runAudit regenerates the audit table (and optionally the document
// that embeds it).
func runAudit(doc string, write bool, patterns []string) int {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cooperlint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cooperlint:", err)
		return 1
	}
	table := lint.RenderAudit(lint.CollectAudit(pkgs, root))
	if doc == "" {
		fmt.Print(table)
		return 0
	}
	path := doc
	if !filepath.IsAbs(path) {
		path = filepath.Join(root, doc)
	}
	old, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cooperlint:", err)
		return 1
	}
	out, err := lint.SpliceAudit(old, table)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cooperlint: %s: %v\n", doc, err)
		return 1
	}
	if write {
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cooperlint:", err)
			return 1
		}
		return 0
	}
	os.Stdout.Write(out)
	return 0
}
