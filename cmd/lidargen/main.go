// Command lidargen renders the synthetic evaluation datasets to disk in
// the KITTI Velodyne binary layout plus JSON labels.
//
//	lidargen -out ./data                            # all eight paper scenarios
//	lidargen -out ./data -dataset T&J
//	lidargen -out ./data -scenario highway -fleet 6 -seed 1
//	lidargen -out ./data -scenario platoon -fleet 4 -frames 20 -hz 10
//
// -scenario accepts a paper scenario name or a generated family
// (highway, intersection, roundabout, parking, platoon) parameterised by
// -fleet/-seed/-traffic, mirroring the other CLIs. With -frames > 1 the
// world is rendered as a dynamic episode: one file per (timestep, pose),
// timestep-major, each label carrying the capture time and the ground
// truth as it stood at that instant.
package main

import (
	"flag"
	"fmt"
	"os"

	"cooper/internal/dataset"
	"cooper/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lidargen:", err)
		os.Exit(1)
	}
}

// resolve finds the named paper scenario or generates the named family.
func resolve(name string, fleet int, seed int64, traffic int) (*scene.Scenario, error) {
	if fam, ok := scene.ParseFamily(name); ok {
		return scene.Generate(scene.GenParams{Family: fam, Fleet: fleet, Seed: seed, Traffic: traffic})
	}
	for _, sc := range scene.AllScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q", name)
}

func run() error {
	out := flag.String("out", "./data", "output directory")
	which := flag.String("dataset", "all", `dataset to render: "KITTI", "T&J" or "all"`)
	name := flag.String("scenario", "", "render one scenario: a paper name or a generated family")
	fleet := flag.Int("fleet", 4, "fleet size for generated families")
	seed := flag.Int64("seed", 1, "generation + sensing seed for generated families")
	traffic := flag.Int("traffic", 0, "ambient car count for generated families (0 = family default)")
	frames := flag.Int("frames", 1, "timesteps to render; > 1 writes a dynamic episode, one file per timestep and pose")
	hz := flag.Float64("hz", 10, "episode frame rate")
	flag.Parse()

	var scenarios []*scene.Scenario
	if *name != "" {
		sc, err := resolve(*name, *fleet, *seed, *traffic)
		if err != nil {
			return err
		}
		scenarios = []*scene.Scenario{sc}
	} else {
		switch *which {
		case "KITTI":
			scenarios = scene.KITTIScenarios()
		case "T&J":
			scenarios = scene.TJScenarios()
		case "all":
			scenarios = scene.AllScenarios()
		default:
			return fmt.Errorf("unknown dataset %q", *which)
		}
	}

	for _, sc := range scenarios {
		if err := dataset.GenerateEpisode(sc, *out, *frames, *hz); err != nil {
			return err
		}
		if *frames > 1 {
			fmt.Printf("rendered %-16s %d frames (%d timesteps × %d poses @ %g Hz, %d-beam)\n",
				sc.Name, *frames*len(sc.Poses), *frames, len(sc.Poses), *hz, sc.LiDAR.BeamCount())
		} else {
			fmt.Printf("rendered %-16s %d frames (%d-beam)\n", sc.Name, len(sc.Poses), sc.LiDAR.BeamCount())
		}
	}
	return nil
}
