// Command lidargen renders the synthetic evaluation datasets to disk in
// the KITTI Velodyne binary layout plus JSON labels.
//
//	lidargen -out ./data            # all eight scenarios
//	lidargen -out ./data -dataset T&J
package main

import (
	"flag"
	"fmt"
	"os"

	"cooper/internal/dataset"
	"cooper/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lidargen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "./data", "output directory")
	which := flag.String("dataset", "all", `dataset to render: "KITTI", "T&J" or "all"`)
	flag.Parse()

	var scenarios []*scene.Scenario
	switch *which {
	case "KITTI":
		scenarios = scene.KITTIScenarios()
	case "T&J":
		scenarios = scene.TJScenarios()
	case "all":
		scenarios = scene.AllScenarios()
	default:
		return fmt.Errorf("unknown dataset %q", *which)
	}

	for _, sc := range scenarios {
		if err := dataset.Generate(sc, *out); err != nil {
			return err
		}
		fmt.Printf("rendered %-16s %d frames (%d-beam)\n", sc.Name, len(sc.Poses), sc.LiDAR.BeamCount())
	}
	return nil
}
