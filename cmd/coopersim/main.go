// Command coopersim runs one of the paper's scenarios end to end and
// prints a human-readable single-shot vs Cooper report.
//
//	coopersim -list
//	coopersim -scenario "T-junction"
//	coopersim -scenario "TJ-Scenario 2" -drift 2x -icp
package main

import (
	"flag"
	"fmt"
	"os"

	"cooper/internal/core"
	"cooper/internal/eval"
	"cooper/internal/fusion"
	"cooper/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coopersim:", err)
		os.Exit(1)
	}
}

func run() error {
	name := flag.String("scenario", "T-junction", "scenario name (see -list)")
	list := flag.Bool("list", false, "list scenarios")
	drift := flag.String("drift", "", "GPS drift mode: xy, one-axis, 2x")
	icp := flag.Bool("icp", false, "refine alignment with ICP")
	workers := flag.Int("workers", 0, "max goroutines for case evaluation (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	scenarios := scene.AllScenarios()
	if *list {
		for _, sc := range scenarios {
			fmt.Printf("%-16s %-6s %d poses, %d cases, %d cars\n",
				sc.Name, sc.Dataset, len(sc.Poses), len(sc.Cases), len(sc.Scene.Cars()))
		}
		return nil
	}

	var target *scene.Scenario
	for _, sc := range scenarios {
		if sc.Name == *name {
			target = sc
			break
		}
	}
	if target == nil {
		return fmt.Errorf("unknown scenario %q (use -list)", *name)
	}

	opts := core.RunOptions{UseICP: *icp, DriftSeed: 7}
	switch *drift {
	case "":
	case "xy":
		opts.Drift = fusion.DriftBothAxes
	case "one-axis":
		opts.Drift = fusion.DriftOneAxis
	case "2x":
		opts.Drift = fusion.DriftDouble
	default:
		return fmt.Errorf("unknown drift mode %q", *drift)
	}

	runner := core.NewScenarioRunner(target).SetWorkers(*workers)
	outcomes, err := runner.RunAll(opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s (%s, %d-beam LiDAR, %d ground-truth cars)\n",
		target.Name, target.Dataset, target.LiDAR.BeamCount(), len(target.Scene.Cars()))
	if opts.Drift != 0 {
		fmt.Printf("GPS drift mode: %v, ICP refinement: %v\n", opts.Drift, *icp)
	}
	for _, o := range outcomes {
		labelI := target.PoseLabels[o.Case.I]
		labelJ := target.PoseLabels[o.Case.J]
		fmt.Printf("\ncase %s (Δd = %.1f m, payload %d KB)\n", o.Case.Name, o.DeltaD, o.PayloadBytes/1024)
		fmt.Printf("  %-6s %-7s %-7s %-7s %s\n", "car", labelI, labelJ, "Cooper", "band")
		for _, row := range o.Rows {
			fmt.Printf("  %-6d %-7s %-7s %-7s %s\n", row.CarID, row.I, row.J, row.Coop, row.Band)
		}
		ci, cj, cc := cells(o, 0), cells(o, 1), cells(o, 2)
		fmt.Printf("  detected: %s=%d  %s=%d  Cooper=%d   accuracy: %.0f%% / %.0f%% / %.0f%%\n",
			labelI, eval.CountDetected(ci), labelJ, eval.CountDetected(cj), eval.CountDetected(cc),
			eval.Accuracy(ci), eval.Accuracy(cj), eval.Accuracy(cc))
		fmt.Printf("  detection time: %v / %v / %v\n",
			o.StatsI.Total.Round(1e6), o.StatsJ.Total.Round(1e6), o.StatsCoop.Total.Round(1e6))
	}
	return nil
}

func cells(o *core.CaseOutcome, col int) []eval.Cell {
	out := make([]eval.Cell, 0, len(o.Rows))
	for _, r := range o.Rows {
		switch col {
		case 0:
			out = append(out, r.I)
		case 1:
			out = append(out, r.J)
		default:
			out = append(out, r.Coop)
		}
	}
	return out
}
