// Command coopersim runs one of the paper's scenarios — or a generated
// fleet scenario — end to end and prints a single-shot vs Cooper report
// with detection precision/recall and the DSRC cost of the exchange.
//
//	coopersim -list
//	coopersim -scenario "T-junction"
//	coopersim -scenario "TJ-Scenario 2" -drift 2x -icp
//	coopersim -scenario highway -fleet 6 -seed 1
//	coopersim -scenario highway -fleet 6 -frames 20 -hz 10
//
// Generated scenarios (-scenario highway|intersection|roundabout|
// parking|platoon) synthesize a world with -fleet cooperating vehicles
// from -seed; pose v1 fuses every other vehicle's transmitted cloud in
// one N-way case.
//
// With -frames > 1 the scenario becomes a dynamic episode: vehicles
// drive their generated trajectories, sense at -hz, broadcast every
// frame on the modelled DSRC channel (stale by transmission time plus
// -delay), and the receiver fuses the newest delivered round — motion-
// compensated unless -compensate=false — while a constant-velocity
// tracker follows the fused detections. The report adds per-frame fused
// precision/recall and the episode's track-continuity metrics.
//
// Output is deterministic for a given seed at any -workers value;
// wall-clock stage times are printed only with -times.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cooper/internal/core"
	"cooper/internal/eval"
	"cooper/internal/fusion"
	"cooper/internal/network"
	"cooper/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coopersim:", err)
		os.Exit(1)
	}
}

// resolve finds the paper scenario or generates the named family.
func resolve(name string, fleet int, seed int64, traffic int) (*scene.Scenario, error) {
	if fam, ok := scene.ParseFamily(name); ok {
		return scene.Generate(scene.GenParams{Family: fam, Fleet: fleet, Seed: seed, Traffic: traffic})
	}
	for _, sc := range scene.AllScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q (use -list)", name)
}

func run() error {
	name := flag.String("scenario", "T-junction", "scenario name or generated family (see -list)")
	list := flag.Bool("list", false, "list scenarios and generated families")
	fleet := flag.Int("fleet", 4, "fleet size for generated families")
	seed := flag.Int64("seed", 1, "generation + sensing seed for generated families")
	traffic := flag.Int("traffic", 0, "ambient car count for generated families (0 = family default)")
	drift := flag.String("drift", "", "GPS drift mode: xy, one-axis, 2x")
	icp := flag.Bool("icp", false, "refine alignment with ICP")
	times := flag.Bool("times", false, "print wall-clock detection times (non-deterministic)")
	workers := flag.Int("workers", 0, "max goroutines for case evaluation (0 = one per CPU, 1 = sequential)")
	frames := flag.Int("frames", 1, "episode length; > 1 plays a dynamic multi-frame episode")
	hz := flag.Float64("hz", 10, "episode frame rate")
	delay := flag.Duration("delay", 0, "extra modelled channel delay per broadcast round (e.g. 250ms)")
	compensate := flag.Bool("compensate", true, "motion-compensate stale sender clouds in episodes")
	backendName := flag.String("backend", "raw", "fusion backend: raw (point clouds) or feature (F-Cooper sparse planes)")
	budget := flag.Int("budget", 0, "per-sender payload cap in bytes, fitted via the backend's ROI ladder (0 = uncapped)")
	wire := flag.String("wire", "v2", "episode broadcast wire: v2 (self-contained quantized frames) or v3 (CPD1 delta stream; needs -compensate=false)")
	flag.Parse()

	if *list {
		for _, sc := range scene.AllScenarios() {
			fmt.Printf("%-16s %-6s %d poses, %d cases, %d cars\n",
				sc.Name, sc.Dataset, len(sc.Poses), len(sc.Cases), len(sc.Scene.Cars()))
		}
		fmt.Printf("generated families (use with -fleet N -seed S):")
		for _, f := range scene.Families() {
			fmt.Printf(" %s", f)
		}
		fmt.Println()
		return nil
	}

	target, err := resolve(*name, *fleet, *seed, *traffic)
	if err != nil {
		return err
	}

	backend, err := fusion.ParseBackend(*backendName)
	if err != nil {
		return err
	}

	opts := core.RunOptions{UseICP: *icp, DriftSeed: 7, Backend: backend, BudgetBytes: *budget}
	switch *drift {
	case "":
	case "xy":
		opts.Drift = fusion.DriftBothAxes
	case "one-axis":
		opts.Drift = fusion.DriftOneAxis
	case "2x":
		opts.Drift = fusion.DriftDouble
	default:
		return fmt.Errorf("unknown drift mode %q", *drift)
	}

	if *frames > 1 {
		if *drift != "" || *icp {
			return fmt.Errorf("episodes (-frames > 1) do not support -drift or -icp yet")
		}
		return runEpisode(target, *frames, *hz, *delay, *compensate, *workers, backend, *wire)
	}
	if *wire != "" && *wire != "v2" {
		return fmt.Errorf("-wire %s applies to episodes; add -frames N", *wire)
	}

	runner := core.NewScenarioRunner(target).SetWorkers(*workers)
	outcomes, err := runner.RunAll(opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s (%s, %d-beam LiDAR, %d poses, %d ground-truth cars)\n",
		target.Name, target.Dataset, target.LiDAR.BeamCount(), len(target.Poses), len(target.Scene.Cars()))
	if opts.Drift != 0 {
		fmt.Printf("GPS drift mode: %v, ICP refinement: %v\n", opts.Drift, *icp)
	}
	if backend.Name() != "raw" || *budget > 0 {
		cap := "uncapped"
		if *budget > 0 {
			cap = fmt.Sprintf("%d B/sender", *budget)
		}
		fmt.Printf("fusion backend: %s, payload cap: %s\n", backend.Name(), cap)
	}
	if len(outcomes) == 0 {
		fmt.Println("no cooperative cases (single-vehicle fleet): nothing exchanged, zero channel load")
		return nil
	}
	sched := network.DefaultScheduler()
	for _, o := range outcomes {
		printCase(target, o, sched, *times)
	}
	return nil
}

// runEpisode plays and prints a dynamic multi-frame episode.
func runEpisode(target *scene.Scenario, frames int, hz float64, delay time.Duration, compensate bool, workers int, backend fusion.Backend, wire string) error {
	res, err := core.RunEpisode(target, core.EpisodeOptions{
		Frames: frames, Hz: hz, Delay: delay, Compensate: compensate, Workers: workers, Backend: backend,
		Wire: wire,
	})
	if err != nil {
		return err
	}

	comp := "on"
	if !compensate {
		comp = "off"
	}
	// The v2 header is pinned by downstream transcript diffs; v3 announces
	// itself with one extra clause.
	wireNote := ""
	if wire == "v3" {
		wireNote = ", wire v3"
	}
	fmt.Printf("episode %s (%s, %d-beam LiDAR, %d poses, %d cars, %d moving): %d frames @ %g Hz, delay %v, compensation %s, backend %s%s\n",
		target.Name, target.Dataset, target.LiDAR.BeamCount(), len(target.Poses),
		len(target.Scene.Cars()), target.MovingObjects(), frames, hz, delay, comp, backend.Name(), wireNote)
	c := res.Case
	fmt.Printf("case %s: receiver %s fuses up to %d sender cloud(s) per round; rounds age by DSRC transmission + delay\n",
		c.Name, target.PoseLabels[c.Receiver()], len(c.Senders()))

	fmt.Printf("  %5s %6s %5s %8s %7s %6s %7s %7s %7s %7s\n",
		"frame", "t-ms", "round", "stale-ms", "lat-ms", "KB", "sing-P%", "sing-R%", "coop-P%", "coop-R%")
	for _, f := range res.Frames {
		round := "-"
		if f.SenderFrame >= 0 {
			round = fmt.Sprint(f.SenderFrame)
		}
		fmt.Printf("  %5d %6d %5s %8d %7.1f %6d %7.0f %7.0f %7.0f %7.0f\n",
			f.Index, f.At.Milliseconds(), round, f.Staleness.Milliseconds(),
			float64(f.RoundLatency.Microseconds())/1000, f.PayloadBytes/1024,
			100*f.Single.Precision(), 100*f.Single.Recall(),
			100*f.Coop.Precision(), 100*f.Coop.Recall())
	}

	t := res.Temporal
	fmt.Printf("tracks: %d live, %d distinct on truth; continuity %.1f%% (%d/%d truth-frames), ID switches %d, fragments %d\n",
		res.Tracks, t.Tracks, 100*t.Continuity(), t.MatchedFrames, t.TruthFrames, t.IDSwitches, t.Fragments)
	return nil
}

func printCase(target *scene.Scenario, o *core.CaseOutcome, sched network.Scheduler, times bool) {
	labelI := target.PoseLabels[o.Case.I]
	labelJ := target.PoseLabels[o.Case.J]
	senders := o.Case.Senders()
	senderLabels := make([]string, len(senders))
	for k, s := range senders {
		senderLabels[k] = target.PoseLabels[s]
	}

	fmt.Printf("\ncase %s (receiver %s fuses %d cloud(s) from %s, Δd = %.1f m)\n",
		o.Case.Name, labelI, len(senders), strings.Join(senderLabels, "+"), o.DeltaD)
	fmt.Printf("  %-6s %-7s %-7s %-7s %s\n", "car", labelI, labelJ, "Cooper", "band")
	for _, row := range o.Rows {
		fmt.Printf("  %-6d %-7s %-7s %-7s %s\n", row.CarID, row.I, row.J, row.Coop, row.Band)
	}

	ci, cj, cc := cells(o, 0), cells(o, 1), cells(o, 2)
	fmt.Printf("  detected: %s=%d  %s=%d  Cooper=%d   accuracy: %.0f%% / %.0f%% / %.0f%%\n",
		labelI, eval.CountDetected(ci), labelJ, eval.CountDetected(cj), eval.CountDetected(cc),
		eval.Accuracy(ci), eval.Accuracy(cj), eval.Accuracy(cc))
	fmt.Printf("  precision: %s=%.0f%%  Cooper=%.0f%%   recall: %s=%.0f%%  Cooper=%.0f%%\n",
		labelI, 100*eval.Precision(eval.CountDetected(ci), o.FPI),
		100*eval.Precision(eval.CountDetected(cc), o.FPCoop),
		labelI, 100*eval.Recall(ci), 100*eval.Recall(cc))

	plan := sched.Plan(o.SenderPayloads)
	fmt.Printf("  DSRC: payload %d KB over %d frame(s), round latency %v, volume %.2f Mbit, load %.2f Mbit/s (util %.0f%%, fits: %v)\n",
		o.PayloadBytes/1024, plan.Senders(), plan.Completion().Round(1e5),
		float64(o.PayloadBytes)*8/1e6, plan.MbitPerSecond(), 100*plan.Utilization(), plan.Fits())
	if times {
		fmt.Printf("  detection time: %v / %v / %v\n",
			o.StatsI.Total.Round(1e6), o.StatsJ.Total.Round(1e6), o.StatsCoop.Total.Round(1e6))
	}
}

func cells(o *core.CaseOutcome, col int) []eval.Cell {
	out := make([]eval.Cell, 0, len(o.Rows))
	for _, r := range o.Rows {
		switch col {
		case 0:
			out = append(out, r.I)
		case 1:
			out = append(out, r.J)
		default:
			out = append(out, r.Coop)
		}
	}
	return out
}
