// Command coopersim runs one of the paper's scenarios — or a generated
// fleet scenario — end to end and prints a single-shot vs Cooper report
// with detection precision/recall and the DSRC cost of the exchange.
//
//	coopersim -list
//	coopersim -scenario "T-junction"
//	coopersim -scenario "TJ-Scenario 2" -drift 2x -icp
//	coopersim -scenario highway -fleet 6 -seed 1
//	coopersim -scenario highway -fleet 6 -frames 20 -hz 10
//
// Generated scenarios (-scenario highway|intersection|roundabout|
// parking|platoon) synthesize a world with -fleet cooperating vehicles
// from -seed; pose v1 fuses every other vehicle's transmitted cloud in
// one N-way case.
//
// With -frames > 1 the scenario becomes a dynamic episode: vehicles
// drive their generated trajectories, sense at -hz, broadcast every
// frame on the modelled DSRC channel (stale by transmission time plus
// -delay), and the receiver fuses the newest delivered round — motion-
// compensated unless -compensate=false — while a constant-velocity
// tracker follows the fused detections. The report adds per-frame fused
// precision/recall and the episode's track-continuity metrics.
//
// Episodes can be degraded: -loss R drops, bursts and reorders
// broadcast slots at rate R (seeded from -seed, deterministic), falling
// back to each sender's newest delivered frame; in episodes -drift is a
// bound in metres for a seeded per-vehicle pose-error walk on every
// reported state, and -icp turns on in-loop ICP alignment correction in
// the raw fusion stage:
//
//	coopersim -scenario intersection -fleet 3 -frames 10 -hz 2 -loss 0.3 -drift 1.0 -icp
//
// Episodes can be persisted and audited: -store FILE appends every
// broadcast, fusion round, detection set and track state to a
// replayable binary log, and -replay FILE pushes a stored log back
// through the live fusion path, verifying that every round reproduces
// its recorded detections byte for byte (a divergence exits nonzero):
//
//	coopersim -scenario platoon -fleet 3 -frames 10 -compensate=false -store run.ceplog
//	coopersim -replay run.ceplog
//
// Output is deterministic for a given seed at any -workers value;
// wall-clock stage times are printed only with -times.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cooper/internal/core"
	"cooper/internal/eval"
	"cooper/internal/fusion"
	"cooper/internal/network"
	"cooper/internal/scene"
	"cooper/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coopersim:", err)
		os.Exit(1)
	}
}

// resolve finds the paper scenario or generates the named family.
func resolve(name string, fleet int, seed int64, traffic int) (*scene.Scenario, error) {
	if fam, ok := scene.ParseFamily(name); ok {
		return scene.Generate(scene.GenParams{Family: fam, Fleet: fleet, Seed: seed, Traffic: traffic})
	}
	for _, sc := range scene.AllScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q (use -list)", name)
}

func run() error {
	name := flag.String("scenario", "T-junction", "scenario name or generated family (see -list)")
	list := flag.Bool("list", false, "list scenarios and generated families")
	fleet := flag.Int("fleet", 4, "fleet size for generated families")
	seed := flag.Int64("seed", 1, "generation + sensing seed for generated families")
	traffic := flag.Int("traffic", 0, "ambient car count for generated families (0 = family default)")
	drift := flag.String("drift", "", "single-shot GPS drift mode (xy, one-axis, 2x); in episodes a pose-walk bound in metres")
	icp := flag.Bool("icp", false, "refine alignment with ICP (in episodes: in-loop correction, raw backend only)")
	loss := flag.Float64("loss", 0, "episode channel loss rate in [0,1): seeded slot drops, bursts and reordering")
	times := flag.Bool("times", false, "print wall-clock detection times (non-deterministic)")
	workers := flag.Int("workers", 0, "max goroutines for case evaluation (0 = one per CPU, 1 = sequential)")
	frames := flag.Int("frames", 1, "episode length; > 1 plays a dynamic multi-frame episode")
	hz := flag.Float64("hz", 10, "episode frame rate")
	delay := flag.Duration("delay", 0, "extra modelled channel delay per broadcast round (e.g. 250ms)")
	compensate := flag.Bool("compensate", true, "motion-compensate stale sender clouds in episodes")
	backendName := flag.String("backend", "raw", "fusion backend: raw (point clouds) or feature (F-Cooper sparse planes)")
	budget := flag.Int("budget", 0, "per-sender payload cap in bytes, fitted via the backend's ROI ladder (0 = uncapped)")
	wire := flag.String("wire", "v2", "episode broadcast wire: v2 (self-contained quantized frames) or v3 (CPD1 delta stream; needs -compensate=false)")
	storePath := flag.String("store", "", "episode: record a replayable log of every round to this file")
	replayPath := flag.String("replay", "", "replay a stored episode log through the live fusion path and verify it byte for byte")
	flag.Parse()

	if *replayPath != "" {
		return runReplay(*replayPath)
	}

	if *list {
		for _, sc := range scene.AllScenarios() {
			fmt.Printf("%-16s %-6s %d poses, %d cases, %d cars\n",
				sc.Name, sc.Dataset, len(sc.Poses), len(sc.Cases), len(sc.Scene.Cars()))
		}
		fmt.Printf("generated families (use with -fleet N -seed S):")
		for _, f := range scene.Families() {
			fmt.Printf(" %s", f)
		}
		fmt.Println()
		return nil
	}

	target, err := resolve(*name, *fleet, *seed, *traffic)
	if err != nil {
		return err
	}

	backend, err := fusion.ParseBackend(*backendName)
	if err != nil {
		return err
	}

	if *frames > 1 {
		// In episodes -drift is a pose-walk bound in metres, not a mode.
		var driftM float64
		if *drift != "" {
			driftM, err = strconv.ParseFloat(*drift, 64)
			if err != nil || driftM < 0 {
				return fmt.Errorf("episodes take -drift as a pose-walk bound in metres (e.g. -drift 1.5), got %q", *drift)
			}
		}
		if *loss < 0 || *loss >= 1 {
			return fmt.Errorf("-loss %g out of range [0,1)", *loss)
		}
		return runEpisode(target, *frames, *hz, *delay, *compensate, *workers, backend, *wire,
			*loss, *seed, driftM, *icp, *storePath)
	}
	if *loss != 0 {
		return fmt.Errorf("-loss applies to episodes; add -frames N")
	}
	if *storePath != "" {
		return fmt.Errorf("-store records episodes; add -frames N")
	}
	if *wire != "" && *wire != "v2" {
		return fmt.Errorf("-wire %s applies to episodes; add -frames N", *wire)
	}

	opts := core.RunOptions{UseICP: *icp, DriftSeed: 7, Backend: backend, BudgetBytes: *budget}
	switch *drift {
	case "":
	case "xy":
		opts.Drift = fusion.DriftBothAxes
	case "one-axis":
		opts.Drift = fusion.DriftOneAxis
	case "2x":
		opts.Drift = fusion.DriftDouble
	default:
		return fmt.Errorf("unknown drift mode %q", *drift)
	}

	runner := core.NewScenarioRunner(target).SetWorkers(*workers)
	outcomes, err := runner.RunAll(opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s (%s, %d-beam LiDAR, %d poses, %d ground-truth cars)\n",
		target.Name, target.Dataset, target.LiDAR.BeamCount(), len(target.Poses), len(target.Scene.Cars()))
	if opts.Drift != 0 {
		fmt.Printf("GPS drift mode: %v, ICP refinement: %v\n", opts.Drift, *icp)
	}
	if backend.Name() != "raw" || *budget > 0 {
		cap := "uncapped"
		if *budget > 0 {
			cap = fmt.Sprintf("%d B/sender", *budget)
		}
		fmt.Printf("fusion backend: %s, payload cap: %s\n", backend.Name(), cap)
	}
	if len(outcomes) == 0 {
		fmt.Println("no cooperative cases (single-vehicle fleet): nothing exchanged, zero channel load")
		return nil
	}
	sched := network.DefaultScheduler()
	for _, o := range outcomes {
		printCase(target, o, sched, *times)
	}
	return nil
}

// runEpisode plays and prints a dynamic multi-frame episode, optionally
// degraded by seeded channel loss and localization drift.
func runEpisode(target *scene.Scenario, frames int, hz float64, delay time.Duration, compensate bool, workers int, backend fusion.Backend, wire string, loss float64, seed int64, driftM float64, correct bool, storePath string) error {
	opts := core.EpisodeOptions{
		Frames: frames, Hz: hz, Delay: delay, Compensate: compensate, Workers: workers, Backend: backend,
		Wire: wire, Drift: driftM, Correct: correct,
	}
	if loss > 0 {
		opts.Loss = network.DefaultLoss(loss, seed)
	}
	var sink *store.EpisodeWriter
	if storePath != "" {
		var err error
		sink, err = store.CreateEpisode(storePath, store.Header{
			Label: "episode", Scenario: target.Name, Seed: seed,
			Frames: frames, Hz: hz, Backend: backend.Name(), UseICP: correct, Wire: wire,
		})
		if err != nil {
			return err
		}
		opts.Sink = sink
	}
	res, err := core.RunEpisode(target, opts)
	if err != nil {
		if sink != nil {
			sink.Close()
		}
		return err
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return err
		}
		defer fmt.Printf("episode log: %s (%d records)\n", storePath, sink.Records())
	}

	comp := "on"
	if !compensate {
		comp = "off"
	}
	// The v2 header is pinned by downstream transcript diffs; v3 and the
	// degradation knobs each announce themselves with one extra clause.
	wireNote := ""
	if wire == "v3" {
		wireNote = ", wire v3"
	}
	if loss > 0 {
		wireNote += fmt.Sprintf(", loss %g (seed %d)", loss, seed)
	}
	if driftM > 0 {
		wireNote += fmt.Sprintf(", drift %gm", driftM)
	}
	if correct {
		wireNote += ", icp correction"
	}
	fmt.Printf("episode %s (%s, %d-beam LiDAR, %d poses, %d cars, %d moving): %d frames @ %g Hz, delay %v, compensation %s, backend %s%s\n",
		target.Name, target.Dataset, target.LiDAR.BeamCount(), len(target.Poses),
		len(target.Scene.Cars()), target.MovingObjects(), frames, hz, delay, comp, backend.Name(), wireNote)
	c := res.Case
	fmt.Printf("case %s: receiver %s fuses up to %d sender cloud(s) per round; rounds age by DSRC transmission + delay\n",
		c.Name, target.PoseLabels[c.Receiver()], len(c.Senders()))

	fmt.Printf("  %5s %6s %5s %8s %7s %6s %7s %7s %7s %7s\n",
		"frame", "t-ms", "round", "stale-ms", "lat-ms", "KB", "sing-P%", "sing-R%", "coop-P%", "coop-R%")
	for _, f := range res.Frames {
		round := "-"
		if f.SenderFrame >= 0 {
			round = fmt.Sprint(f.SenderFrame)
		}
		fmt.Printf("  %5d %6d %5s %8d %7.1f %6d %7.0f %7.0f %7.0f %7.0f\n",
			f.Index, f.At.Milliseconds(), round, f.Staleness.Milliseconds(),
			float64(f.RoundLatency.Microseconds())/1000, f.PayloadBytes/1024,
			100*f.Single.Precision(), 100*f.Single.Recall(),
			100*f.Coop.Precision(), 100*f.Coop.Recall())
	}

	if loss > 0 {
		lostFrames := 0
		for _, f := range res.Frames {
			lostFrames += f.Lost
		}
		fmt.Printf("channel: %d sender frame(s) lost in transit; each lossy round fused the newest delivered fallback\n", lostFrames)
	}
	t := res.Temporal
	fmt.Printf("tracks: %d live, %d distinct on truth; continuity %.1f%% (%d/%d truth-frames), ID switches %d, fragments %d\n",
		res.Tracks, t.Tracks, 100*t.Continuity(), t.MatchedFrames, t.TruthFrames, t.IDSwitches, t.Fragments)
	return nil
}

func printCase(target *scene.Scenario, o *core.CaseOutcome, sched network.Scheduler, times bool) {
	labelI := target.PoseLabels[o.Case.I]
	labelJ := target.PoseLabels[o.Case.J]
	senders := o.Case.Senders()
	senderLabels := make([]string, len(senders))
	for k, s := range senders {
		senderLabels[k] = target.PoseLabels[s]
	}

	fmt.Printf("\ncase %s (receiver %s fuses %d cloud(s) from %s, Δd = %.1f m)\n",
		o.Case.Name, labelI, len(senders), strings.Join(senderLabels, "+"), o.DeltaD)
	fmt.Printf("  %-6s %-7s %-7s %-7s %s\n", "car", labelI, labelJ, "Cooper", "band")
	for _, row := range o.Rows {
		fmt.Printf("  %-6d %-7s %-7s %-7s %s\n", row.CarID, row.I, row.J, row.Coop, row.Band)
	}

	ci, cj, cc := cells(o, 0), cells(o, 1), cells(o, 2)
	fmt.Printf("  detected: %s=%d  %s=%d  Cooper=%d   accuracy: %.0f%% / %.0f%% / %.0f%%\n",
		labelI, eval.CountDetected(ci), labelJ, eval.CountDetected(cj), eval.CountDetected(cc),
		eval.Accuracy(ci), eval.Accuracy(cj), eval.Accuracy(cc))
	fmt.Printf("  precision: %s=%.0f%%  Cooper=%.0f%%   recall: %s=%.0f%%  Cooper=%.0f%%\n",
		labelI, 100*eval.Precision(eval.CountDetected(ci), o.FPI),
		100*eval.Precision(eval.CountDetected(cc), o.FPCoop),
		labelI, 100*eval.Recall(ci), 100*eval.Recall(cc))

	plan := sched.Plan(o.SenderPayloads)
	fmt.Printf("  DSRC: payload %d KB over %d frame(s), round latency %v, volume %.2f Mbit, load %.2f Mbit/s (util %.0f%%, fits: %v)\n",
		o.PayloadBytes/1024, plan.Senders(), plan.Completion().Round(1e5),
		float64(o.PayloadBytes)*8/1e6, plan.MbitPerSecond(), 100*plan.Utilization(), plan.Fits())
	if times {
		fmt.Printf("  detection time: %v / %v / %v\n",
			o.StatsI.Total.Round(1e6), o.StatsJ.Total.Round(1e6), o.StatsCoop.Total.Round(1e6))
	}
}

// runReplay decodes a stored episode log and pushes every round back
// through the live fusion path, verifying each against its recorded
// detections byte for byte. A divergence is an error: either the log is
// damaged or the fusion path changed since the episode was recorded.
func runReplay(path string) error {
	ep, err := store.ReadEpisodeFile(path)
	if err != nil {
		return err
	}
	h := ep.Header
	wire := h.Wire
	if wire == "" {
		wire = "v2"
	}
	complete := "complete"
	if !ep.Complete {
		complete = "truncated"
	}
	fmt.Printf("episode %q: scenario %q, seed %d, backend %s, wire %s — %d broadcast(s), %d round(s), %d detection set(s), %d track set(s), %s\n",
		h.Label, h.Scenario, h.Seed, h.Backend, wire,
		len(ep.Frames), len(ep.Rounds), len(ep.Detections), len(ep.Tracks), complete)
	_, stats, err := store.ReplayEpisode(ep)
	if err != nil {
		return err
	}
	fmt.Println(stats)
	if !stats.Identical() {
		return fmt.Errorf("replay diverged from the recorded detections")
	}
	fmt.Println("replay byte-identical: the stored episode reproduces exactly")
	return nil
}

func cells(o *core.CaseOutcome, col int) []eval.Cell {
	out := make([]eval.Cell, 0, len(o.Rows))
	for _, r := range o.Rows {
		switch col {
		case 0:
			out = append(out, r.I)
		case 1:
			out = append(out, r.J)
		default:
			out = append(out, r.Coop)
		}
	}
	return out
}
