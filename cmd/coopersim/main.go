// Command coopersim runs one of the paper's scenarios — or a generated
// fleet scenario — end to end and prints a single-shot vs Cooper report
// with detection precision/recall and the DSRC cost of the exchange.
//
//	coopersim -list
//	coopersim -scenario "T-junction"
//	coopersim -scenario "TJ-Scenario 2" -drift 2x -icp
//	coopersim -scenario highway -fleet 6 -seed 1
//
// Generated scenarios (-scenario highway|intersection|roundabout|
// parking|platoon) synthesize a world with -fleet cooperating vehicles
// from -seed; pose v1 fuses every other vehicle's transmitted cloud in
// one N-way case. Output is deterministic for a given seed at any
// -workers value; wall-clock stage times are printed only with -times.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cooper/internal/core"
	"cooper/internal/eval"
	"cooper/internal/fusion"
	"cooper/internal/network"
	"cooper/internal/scene"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "coopersim:", err)
		os.Exit(1)
	}
}

// resolve finds the paper scenario or generates the named family.
func resolve(name string, fleet int, seed int64, traffic int) (*scene.Scenario, error) {
	if fam, ok := scene.ParseFamily(name); ok {
		return scene.Generate(scene.GenParams{Family: fam, Fleet: fleet, Seed: seed, Traffic: traffic})
	}
	for _, sc := range scene.AllScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q (use -list)", name)
}

func run() error {
	name := flag.String("scenario", "T-junction", "scenario name or generated family (see -list)")
	list := flag.Bool("list", false, "list scenarios and generated families")
	fleet := flag.Int("fleet", 4, "fleet size for generated families")
	seed := flag.Int64("seed", 1, "generation + sensing seed for generated families")
	traffic := flag.Int("traffic", 0, "ambient car count for generated families (0 = family default)")
	drift := flag.String("drift", "", "GPS drift mode: xy, one-axis, 2x")
	icp := flag.Bool("icp", false, "refine alignment with ICP")
	times := flag.Bool("times", false, "print wall-clock detection times (non-deterministic)")
	workers := flag.Int("workers", 0, "max goroutines for case evaluation (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *list {
		for _, sc := range scene.AllScenarios() {
			fmt.Printf("%-16s %-6s %d poses, %d cases, %d cars\n",
				sc.Name, sc.Dataset, len(sc.Poses), len(sc.Cases), len(sc.Scene.Cars()))
		}
		fmt.Printf("generated families (use with -fleet N -seed S):")
		for _, f := range scene.Families() {
			fmt.Printf(" %s", f)
		}
		fmt.Println()
		return nil
	}

	target, err := resolve(*name, *fleet, *seed, *traffic)
	if err != nil {
		return err
	}

	opts := core.RunOptions{UseICP: *icp, DriftSeed: 7}
	switch *drift {
	case "":
	case "xy":
		opts.Drift = fusion.DriftBothAxes
	case "one-axis":
		opts.Drift = fusion.DriftOneAxis
	case "2x":
		opts.Drift = fusion.DriftDouble
	default:
		return fmt.Errorf("unknown drift mode %q", *drift)
	}

	runner := core.NewScenarioRunner(target).SetWorkers(*workers)
	outcomes, err := runner.RunAll(opts)
	if err != nil {
		return err
	}

	fmt.Printf("%s (%s, %d-beam LiDAR, %d poses, %d ground-truth cars)\n",
		target.Name, target.Dataset, target.LiDAR.BeamCount(), len(target.Poses), len(target.Scene.Cars()))
	if opts.Drift != 0 {
		fmt.Printf("GPS drift mode: %v, ICP refinement: %v\n", opts.Drift, *icp)
	}
	if len(outcomes) == 0 {
		fmt.Println("no cooperative cases (single-vehicle fleet): nothing exchanged, zero channel load")
		return nil
	}
	sched := network.DefaultScheduler()
	for _, o := range outcomes {
		printCase(target, o, sched, *times)
	}
	return nil
}

func printCase(target *scene.Scenario, o *core.CaseOutcome, sched network.Scheduler, times bool) {
	labelI := target.PoseLabels[o.Case.I]
	labelJ := target.PoseLabels[o.Case.J]
	senders := o.Case.Senders()
	senderLabels := make([]string, len(senders))
	for k, s := range senders {
		senderLabels[k] = target.PoseLabels[s]
	}

	fmt.Printf("\ncase %s (receiver %s fuses %d cloud(s) from %s, Δd = %.1f m)\n",
		o.Case.Name, labelI, len(senders), strings.Join(senderLabels, "+"), o.DeltaD)
	fmt.Printf("  %-6s %-7s %-7s %-7s %s\n", "car", labelI, labelJ, "Cooper", "band")
	for _, row := range o.Rows {
		fmt.Printf("  %-6d %-7s %-7s %-7s %s\n", row.CarID, row.I, row.J, row.Coop, row.Band)
	}

	ci, cj, cc := cells(o, 0), cells(o, 1), cells(o, 2)
	fmt.Printf("  detected: %s=%d  %s=%d  Cooper=%d   accuracy: %.0f%% / %.0f%% / %.0f%%\n",
		labelI, eval.CountDetected(ci), labelJ, eval.CountDetected(cj), eval.CountDetected(cc),
		eval.Accuracy(ci), eval.Accuracy(cj), eval.Accuracy(cc))
	fmt.Printf("  precision: %s=%.0f%%  Cooper=%.0f%%   recall: %s=%.0f%%  Cooper=%.0f%%\n",
		labelI, 100*eval.Precision(eval.CountDetected(ci), o.FPI),
		100*eval.Precision(eval.CountDetected(cc), o.FPCoop),
		labelI, 100*eval.Recall(ci), 100*eval.Recall(cc))

	plan := sched.Plan(o.SenderPayloads)
	fmt.Printf("  DSRC: payload %d KB over %d frame(s), round latency %v, volume %.2f Mbit, load %.2f Mbit/s (util %.0f%%, fits: %v)\n",
		o.PayloadBytes/1024, plan.Senders(), plan.Completion().Round(1e5),
		float64(o.PayloadBytes)*8/1e6, plan.MbitPerSecond(), 100*plan.Utilization(), plan.Fits())
	if times {
		fmt.Printf("  detection time: %v / %v / %v\n",
			o.StatsI.Total.Round(1e6), o.StatsJ.Total.Round(1e6), o.StatsCoop.Total.Round(1e6))
	}
}

func cells(o *core.CaseOutcome, col int) []eval.Cell {
	out := make([]eval.Cell, 0, len(o.Rows))
	for _, r := range o.Rows {
		switch col {
		case 0:
			out = append(out, r.I)
		case 1:
			out = append(out, r.J)
		default:
			out = append(out, r.Coop)
		}
	}
	return out
}
