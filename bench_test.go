// Benchmarks regenerating every figure of the paper's evaluation plus the
// ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig benchmarks measure the full experiment (scene build, sensing,
// fusion, detection, evaluation); the SPOD and substrate benchmarks
// isolate pipeline stages.
package cooper_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"
	"time"

	"cooper"
	"cooper/internal/core"
	"cooper/internal/experiments"
	"cooper/internal/fusion"
	"cooper/internal/geom"
	"cooper/internal/hub"
	"cooper/internal/lidar"
	"cooper/internal/network"
	"cooper/internal/pointcloud"
	"cooper/internal/roi"
	"cooper/internal/scene"
	"cooper/internal/spod"
	"cooper/internal/store"
)

// benchFigure runs one experiment generator end to end.
func benchFigure(b *testing.B, fig int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite()
		if err := experiments.Run(suite, fig, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel evaluation engine: sequential vs parallel full suite ---
//
// The pair below is the headline perf-trajectory number for the parallel
// engine: the full 8-scenario, 19-case evaluation run case-by-case on one
// goroutine versus fanned out across the CPUs. Outputs are identical
// (see internal/core TestRunAllParallelMatchesSequential); only
// wall-clock time may differ.

func benchSuite(b *testing.B, workers int) {
	b.Helper()
	scenarios := scene.AllScenarios()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sc := range scenarios {
			runner := cooper.NewScenarioRunner(sc).SetWorkers(workers)
			if _, err := runner.RunAll(cooper.RunOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }
func BenchmarkSuiteParallel(b *testing.B)   { benchSuite(b, 0) }

// The figure-level pair additionally exercises the concurrent generator
// fan-out and the suite's shared caches.

func BenchmarkAllFiguresSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite().SetWorkers(1)
		for _, f := range experiments.Figures() {
			if err := experiments.Run(suite, f, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAllFiguresParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.NewSuite().SetWorkers(0).RunAllFigures(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig02KITTIExample(b *testing.B)     { benchFigure(b, 2) }
func BenchmarkFig03KITTIScenarios(b *testing.B)   { benchFigure(b, 3) }
func BenchmarkFig04KITTIAccuracy(b *testing.B)    { benchFigure(b, 4) }
func BenchmarkFig05TJExample(b *testing.B)        { benchFigure(b, 5) }
func BenchmarkFig06TJScenarios(b *testing.B)      { benchFigure(b, 6) }
func BenchmarkFig07TJAccuracy(b *testing.B)       { benchFigure(b, 7) }
func BenchmarkFig08ImprovementCDF(b *testing.B)   { benchFigure(b, 8) }
func BenchmarkFig09DetectionTime(b *testing.B)    { benchFigure(b, 9) }
func BenchmarkFig10GPSDrift(b *testing.B)         { benchFigure(b, 10) }
func BenchmarkFig11ROICategories(b *testing.B)    { benchFigure(b, 11) }
func BenchmarkFig12DataVolume(b *testing.B)       { benchFigure(b, 12) }
func BenchmarkFig13CodecFeasibility(b *testing.B) { benchFigure(b, 13) }

// --- Fleet-scale N-way fusion (generated scenarios) ---
//
// The Fleet benchmarks are the perf-trajectory numbers for the fleet
// pipeline: generating a procedural world, sensing N poses, fusing K
// transmitted clouds into one receiver frame and evaluating the case.
// CI's bench-smoke step runs these once and records BENCH_fleet.json.

func benchFleet(b *testing.B, fam cooper.ScenarioFamily, fleet int) {
	b.Helper()
	sc, err := cooper.GenerateScenario(cooper.GenParams{Family: fam, Fleet: fleet, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner := cooper.NewScenarioRunner(sc)
		if _, err := runner.RunAll(cooper.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetHighway2(b *testing.B) { benchFleet(b, "highway", 2) }
func BenchmarkFleetHighway6(b *testing.B) { benchFleet(b, "highway", 6) }
func BenchmarkFleetPlatoon8(b *testing.B) { benchFleet(b, "platoon", 8) }
func BenchmarkFleetParking8(b *testing.B) { benchFleet(b, "parking", 8) }
func BenchmarkFleetSweepFigure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := experiments.NewSuite()
		if err := experiments.Run(suite, 14, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fleet hub serving layer ---
//
// The Hub benchmarks are the perf-trajectory numbers for the serving
// subsystem: assembling K-sender fusion rounds from the latest-frame
// cache, with and without bandwidth-capped payload refitting, and the
// full TCP request/reply round trip. CI's hub bench-smoke step runs
// these once and records BENCH_hub.json.

// hubFleet publishes n synthetic vehicle frames (~pts points each,
// spread all around the sensor so the ROI ladder genuinely shrinks them)
// into a fresh hub.
func hubFleet(b *testing.B, n, pts int) *hub.Hub {
	b.Helper()
	h := hub.New(hub.Config{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		cloud := pointcloud.New(pts)
		for p := 0; p < pts; p++ {
			az := rng.Float64()*2*math.Pi - math.Pi
			r := 2 + rng.Float64()*40
			cloud.AppendXYZR(r*math.Cos(az), r*math.Sin(az), rng.Float64()*2, rng.Float64())
		}
		payload, err := pointcloud.EncodeQuantized(cloud)
		if err != nil {
			b.Fatal(err)
		}
		st := fusion.VehicleState{GPS: geom.V3(float64(12*i), 0, 0), MountHeight: 1.7}
		if _, err := h.Publish(fmt.Sprintf("v%d", i+1), st, payload, 1); err != nil {
			b.Fatal(err)
		}
	}
	return h
}

func benchHubAssemble(b *testing.B, vehicles int, budgetBps uint64) {
	h := hubFleet(b, vehicles, 20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.AssembleRound("rx", geom.V3(0, 0, 0), 0, budgetBps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHubAssemble4Uncapped(b *testing.B)  { benchHubAssemble(b, 4, 0) }
func BenchmarkHubAssemble8Uncapped(b *testing.B)  { benchHubAssemble(b, 8, 0) }
func BenchmarkHubAssemble8Budgeted(b *testing.B)  { benchHubAssemble(b, 8, 2_000_000) }
func BenchmarkHubAssemble16Budgeted(b *testing.B) { benchHubAssemble(b, 16, 2_000_000) }

// BenchmarkHubSessionRound measures the full serving path over loopback
// TCP: fusion request in, K scheduled frames out.
func BenchmarkHubSessionRound(b *testing.B) {
	h := hubFleet(b, 8, 20_000)
	l, err := network.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go h.Serve(l)
	defer h.Close()
	st := fusion.VehicleState{GPS: geom.V3(1, 0, 0), MountHeight: 1.7}
	cl, _, err := hub.Connect(l.Addr(), "rx", st)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frames, err := cl.RequestRound(st, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(frames) != 8 {
			b.Fatalf("round carried %d frames, want 8", len(frames))
		}
	}
}

// --- Fusion backends: sender encode and receiver fuse, raw vs feature ---
//
// The Feature benchmarks are the perf-trajectory numbers for the
// pluggable-backend layer: the sender-side encode of one frame (with the
// resulting wire size reported as bytes/frame, the Fig. 16 volume axis)
// and the receiver-side fuse + detect round over one collected payload,
// for both backends on the same sensed scenario. CI's feature bench-smoke
// step runs these once and records BENCH_feature.json.

// backendFrames senses a two-vehicle generated intersection and lifts
// both views into backend sensor frames.
func backendFrames(b *testing.B) (rx, tx fusion.SensorFrame) {
	b.Helper()
	sc, err := cooper.GenerateScenario(cooper.GenParams{Family: "intersection", Fleet: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	runner := cooper.NewScenarioRunner(sc)
	vi, vj := runner.Vehicle(0), runner.Vehicle(1)
	ci := vi.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)
	cj := vj.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)
	return fusion.SensorFrame{State: vi.State(), Cloud: ci},
		fusion.SensorFrame{State: vj.State(), Cloud: cj}
}

func benchBackendEncode(b *testing.B, backend fusion.Backend) {
	b.Helper()
	_, tx := backendFrames(b)
	scratch := spod.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	wire := 0
	for i := 0; i < b.N; i++ {
		p, err := backend.Encode(tx, scratch)
		if err != nil {
			b.Fatal(err)
		}
		wire = len(p.Data)
	}
	b.ReportMetric(float64(wire), "bytes/frame")
}

func benchBackendFuse(b *testing.B, backend fusion.Backend) {
	b.Helper()
	rx, tx := backendFrames(b)
	payload, err := backend.Encode(tx, nil)
	if err != nil {
		b.Fatal(err)
	}
	scratch := spod.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := backend.Fuse(rx, []fusion.Payload{payload})
		if err != nil {
			b.Fatal(err)
		}
		if dets, _ := in.Detect(spod.DefaultConfig(), scratch); len(dets) == 0 {
			b.Fatal("fused round produced no detections")
		}
	}
}

func BenchmarkFeatureBackendEncode(b *testing.B) {
	benchBackendEncode(b, fusion.DefaultFeatureBackend())
}
func BenchmarkFeatureRawEncodeBaseline(b *testing.B) { benchBackendEncode(b, fusion.RawBackend{}) }
func BenchmarkFeatureBackendFuseDetect(b *testing.B) {
	benchBackendFuse(b, fusion.DefaultFeatureBackend())
}
func BenchmarkFeatureRawFuseDetectBaseline(b *testing.B) { benchBackendFuse(b, fusion.RawBackend{}) }

// --- Dynamic-world engine: tracking + compensation hot path ---
//
// The Track benchmarks are the perf-trajectory numbers for the time
// axis: per-frame track association/smoothing, sender-side motion
// compensation of a stale frame, and a full streamed episode (sense →
// broadcast → compensate → fuse → detect → track). CI's track
// bench-smoke step runs these once and records BENCH_track.json.

func BenchmarkTrackStepFleet(b *testing.B) {
	// A 12-object stream drifting at mixed velocities, stepped at 10 Hz.
	tr := cooper.NewTracker(cooper.TrackerConfig{})
	mkFrame := func(k int) []cooper.Detection {
		dets := make([]cooper.Detection, 0, 12)
		for o := 0; o < 12; o++ {
			x := float64(o%4)*15 + float64(k)*0.1*float64(o%3)*4
			y := float64(o/4)*8 - 8
			dets = append(dets, cooper.Detection{
				Box:   geom.NewBox(geom.V3(x, y, 0.78), 3.9, 1.6, 1.56, 0),
				Score: 0.9,
			})
		}
		return dets
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(time.Duration(i)*100*time.Millisecond, mkFrame(i))
	}
}

func BenchmarkTrackCompensateScan(b *testing.B) {
	sc, err := cooper.GenerateScenario(cooper.GenParams{Family: "platoon", Fleet: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	scanner := lidar.NewScanner(sc.LiDAR, sc.Seed)
	scan := scanner.ScanFrom(sc.Poses[0], sc.Scene.Targets(), sc.Scene.GroundZ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CompensateScan(sc, scan, sc.Poses[0], 0, 500*time.Millisecond)
	}
}

func BenchmarkTrackEpisodePlatoon(b *testing.B) {
	sc, err := cooper.GenerateScenario(cooper.GenParams{Family: "platoon", Fleet: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	lab := cooper.NewEpisodeLab(sc) // captures amortise across iterations
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lab.Run(cooper.EpisodeOptions{
			Frames: 4, Hz: 2, Delay: 250 * time.Millisecond, Compensate: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Frames) != 4 {
			b.Fatalf("episode ran %d frames, want 4", len(res.Frames))
		}
	}
}

// --- Degraded-world engine: lossy-channel fallback hot path ---
//
// The Loss benchmarks are the perf-trajectory numbers for the degraded-
// world path: judging a broadcast round through the seeded channel model
// and playing a fused episode whose rounds fall back to each sender's
// newest delivered frame. Each episode benchmark also reports how much
// cooperative recall the loss rate costs against the lossless run
// (recall-delta-pp; 0 at rate 0 by construction). CI's loss bench-smoke
// step runs these once and records BENCH_loss.json.

func benchLossEpisode(b *testing.B, rate float64) {
	b.Helper()
	sc, err := cooper.GenerateScenario(cooper.GenParams{Family: "intersection", Fleet: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	lab := cooper.NewEpisodeLab(sc) // captures amortise across iterations
	clean, err := lab.Run(cooper.EpisodeOptions{Frames: 4, Hz: 2, Compensate: true})
	if err != nil {
		b.Fatal(err)
	}
	opts := cooper.EpisodeOptions{Frames: 4, Hz: 2, Compensate: true}
	if rate > 0 {
		opts.Loss = cooper.DefaultLoss(rate, 1)
	}
	var res *cooper.EpisodeResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err = lab.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*(clean.MeanCoopRecall()-res.MeanCoopRecall()), "recall-delta-pp")
}

func BenchmarkLossEpisodeClean(b *testing.B) { benchLossEpisode(b, 0) }
func BenchmarkLossEpisode5pct(b *testing.B)  { benchLossEpisode(b, 0.05) }
func BenchmarkLossEpisode20pct(b *testing.B) { benchLossEpisode(b, 0.2) }

// BenchmarkLossModelRound isolates the channel model itself: judging
// every slot of a 4-sender broadcast plan (drop, burst, reorder draws)
// must stay O(slots) with only the verdict slices allocated.
func BenchmarkLossModelRound(b *testing.B) {
	model := network.DefaultLoss(0.3, 7)
	plan := network.DefaultScheduler().Plan([]int{60_000, 55_000, 52_000, 48_000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Round(int64(i), plan)
	}
}

// --- Fig. 9 isolation: the detector alone on single vs merged clouds ---

func scanPair(sc *scene.Scenario) (*pointcloud.Cloud, *pointcloud.Cloud) {
	runner := cooper.NewScenarioRunner(sc)
	vi := runner.Vehicle(0)
	vj := runner.Vehicle(1)
	ci := vi.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)
	cj := vj.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)
	merged := fusion.Fuse(vi.State(), vj.State(), ci, cj)
	return ci, merged
}

func BenchmarkSPODSingleShot16Beam(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[0])
	det := spod.NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(single)
	}
}

func BenchmarkSPODCooperative16Beam(b *testing.B) {
	_, merged := scanPair(scene.TJScenarios()[0])
	det := spod.New(spod.CoopConfig(spod.DefaultConfig(), 15))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(merged)
	}
}

func BenchmarkSPODSingleShot64Beam(b *testing.B) {
	single, _ := scanPair(scene.KITTIScenarios()[0])
	cfg := spod.DefaultConfig()
	cfg.VerticalFOVTop = lidar.HDL64().MaxElevation()
	det := spod.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(single)
	}
}

func BenchmarkSPODCooperative64Beam(b *testing.B) {
	_, merged := scanPair(scene.KITTIScenarios()[0])
	cfg := spod.DefaultConfig()
	cfg.VerticalFOVTop = lidar.HDL64().MaxElevation()
	det := spod.New(spod.CoopConfig(cfg, 15))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(merged)
	}
}

// --- Ablation: SPOD vs the naive clustering baseline on sparse data ---

func BenchmarkDetectorComparisonSPOD(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[1])
	det := spod.NewDefault()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(single)
	}
}

func BenchmarkDetectorComparisonClusterBaseline(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[1])
	det := spod.NewClusterDetector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(single)
	}
}

// --- Ablation: sparse vs dense convolution over realistic occupancy ---

func middleTensor(b *testing.B) (*spod.SparseTensor, geom.AABB) {
	b.Helper()
	single, _ := scanPair(scene.TJScenarios()[0])
	// Bound the region so the dense-equivalent grid stays tractable.
	single = single.CropRange(0, 40)
	ground := single.EstimateGroundZ()
	nonGround := single.RemoveGroundPlane(ground, 0.25)
	grid := spod.Voxelize(nonGround, 0.2, 0.25, ground)
	bounds, _ := nonGround.Bounds()
	return spod.NewSparseTensor(grid), bounds
}

func BenchmarkSparseConv(b *testing.B) {
	tensor, _ := middleTensor(b)
	layer := spod.DefaultMiddleLayers()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.Apply(tensor)
	}
}

func BenchmarkDenseConvEquivalent(b *testing.B) {
	// The same convolution evaluated densely over the tensor's bounding
	// grid — what a non-sparse middle layer would pay. The paper adopts
	// sparse convolution precisely because LiDAR voxel grids are mostly
	// empty.
	tensor, bounds := middleTensor(b)
	layer := spod.DefaultMiddleLayers()[0]
	nx := int(bounds.Size().X/0.2) + 1
	ny := int(bounds.Size().Y/0.2) + 1
	nz := int(bounds.Size().Z/0.25) + 1
	if nx*ny*nz > 40_000_000 {
		b.Skip("dense grid too large for this host")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Visit every dense site; reuse the sparse kernel at each.
		var sum float64
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				for z := 0; z < nz; z++ {
					var acc [3]float64
					for dz := int32(-1); dz <= 1; dz++ {
						for dy := int32(-1); dy <= 1; dy++ {
							for dx := int32(-1); dx <= 1; dx++ {
								nb, ok := tensor.FeatureAt(pointcloud.VoxelKey{X: int32(x) + dx, Y: int32(y) + dy, Z: int32(z) + dz})
								if !ok {
									continue
								}
								tap := layer.Spatial[dz+1][dy+1][dx+1]
								for c := 0; c < 3; c++ {
									acc[c] += tap * nb[c]
								}
							}
						}
					}
					sum += acc[0]
				}
			}
		}
		_ = sum
	}
}

// --- Ablation: voxel size sweep ---

func benchVoxelSize(b *testing.B, size float64) {
	single, _ := scanPair(scene.TJScenarios()[0])
	cfg := spod.DefaultConfig()
	cfg.VoxelSizeXY = size
	det := spod.New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(single)
	}
}

func BenchmarkVoxelSize10cm(b *testing.B) { benchVoxelSize(b, 0.10) }
func BenchmarkVoxelSize20cm(b *testing.B) { benchVoxelSize(b, 0.20) }
func BenchmarkVoxelSize40cm(b *testing.B) { benchVoxelSize(b, 0.40) }

// --- Ablation: ROI extraction vs full-frame payloads ---

func BenchmarkROIExtractionFullFrame(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := roi.PayloadBytes(single, roi.CategoryFullFrame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkROIExtractionFrontFOV(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := roi.PayloadBytes(single, roi.CategoryFrontFOV); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkWireCodecQuantized(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := pointcloud.EncodeQuantized(single)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pointcloud.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireCodecRaw(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pointcloud.Decode(pointcloud.EncodeRaw(single)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiDARScan16Beam(b *testing.B) {
	sc := scene.TJScenarios()[0]
	scanner := lidar.NewScanner(sc.LiDAR, 1)
	targets := sc.Scene.Targets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanner.ScanFrom(sc.Poses[0], targets, sc.Scene.GroundZ)
	}
}

func BenchmarkLiDARScan64Beam(b *testing.B) {
	sc := scene.KITTIScenarios()[0]
	scanner := lidar.NewScanner(sc.LiDAR, 1)
	targets := sc.Scene.Targets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanner.ScanFrom(sc.Poses[0], targets, sc.Scene.GroundZ)
	}
}

func BenchmarkAlignAndMerge(b *testing.B) {
	sc := scene.TJScenarios()[0]
	runner := cooper.NewScenarioRunner(sc)
	vi, vj := runner.Vehicle(0), runner.Vehicle(1)
	ci := vi.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)
	cj := vj.Sense(sc.Scene.Targets(), sc.Scene.GroundZ)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fusion.Fuse(vi.State(), vj.State(), ci, cj)
	}
}

func BenchmarkICPRefinement(b *testing.B) {
	single, _ := scanPair(scene.TJScenarios()[0])
	offset := geom.NewTransform(0.01, 0, 0, geom.V3(0.2, 0.15, 0))
	shifted := single.Transform(offset)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fusion.RefineAlignment(single, shifted, fusion.DefaultICPConfig())
	}
}

func BenchmarkDSRCModel(b *testing.B) {
	ch := network.DefaultDSRC()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.TransmitTime(rng.Intn(1 << 20))
	}
}

func BenchmarkIoUBEV(b *testing.B) {
	b1 := geom.NewBox(geom.V3(0, 0, 0.78), 3.9, 1.6, 1.56, 0.3)
	b2 := geom.NewBox(geom.V3(1, 0.5, 0.78), 3.9, 1.6, 1.56, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.IoUBEV(b1, b2)
	}
}

// --- Episode store + telemetry (observability layer) ---
//
// The Store benchmarks are the observability-layer numbers: append and
// parse throughput for the episode log, replay back through the live
// fusion path, and — the acceptance bar — what instrumenting an episode
// with telemetry plus a store sink costs against the bare run (<5% of
// episode throughput). CI's store bench-smoke step runs these once and
// records BENCH_store.json.

// storeBenchLog records one platoon episode into memory and returns the
// raw log bytes; the read/replay benchmarks parse and re-fuse it.
func storeBenchLog(b *testing.B) []byte {
	b.Helper()
	sc, err := cooper.GenerateScenario(cooper.GenParams{Family: "platoon", Fleet: 3, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	ew, err := cooper.NewEpisodeLog(&buf, cooper.EpisodeHeader{
		Label: "bench", Scenario: sc.Name, Seed: sc.Seed, Frames: 4, Hz: 4, Backend: "raw",
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cooper.NewEpisodeLab(sc).Run(cooper.EpisodeOptions{Frames: 4, Hz: 4, Sink: ew}); err != nil {
		b.Fatal(err)
	}
	if err := ew.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkStoreAppendRound measures raw log append throughput: one
// representative cooperative round (lossless own cloud + two quantized
// sender payloads) written per iteration, CRC and framing included.
func BenchmarkStoreAppendRound(b *testing.B) {
	own, remote := scanPair(scene.TJScenarios()[0])
	payload, err := pointcloud.EncodeQuantized(remote)
	if err != nil {
		b.Fatal(err)
	}
	cfg := spod.DefaultConfig()
	round := store.Round{
		Frame: 1, Receiver: "v1", Own: own,
		FOVTop: cfg.VerticalFOVTop, MaxRange: cfg.MaxDetectionRange,
		LatencyUS: 120_000, PayloadBytes: 2 * int64(len(payload)),
		Payloads: []store.RoundPayload{
			{Sender: "v2", Data: payload},
			{Sender: "v3", Data: payload},
		},
	}
	ew, err := cooper.NewEpisodeLog(io.Discard, cooper.EpisodeHeader{Label: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(store.EncodeRound(round))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round.Frame = i
		if err := ew.WriteRound(round); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreReadEpisode parses a full recorded episode (header, CRC
// checks, record decode) from memory.
func BenchmarkStoreReadEpisode(b *testing.B) {
	raw := storeBenchLog(b)
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep, err := store.ReadEpisode(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if !ep.Complete {
			b.Fatal("episode truncated")
		}
	}
}

// BenchmarkStoreReplayEpisode re-fuses and re-detects every stored round
// and verifies the recorded detections byte for byte — the full
// regression-replay path behind `coopersim -replay` and the hub's
// /episodes endpoint.
func BenchmarkStoreReplayEpisode(b *testing.B) {
	ep, err := store.ReadEpisode(bytes.NewReader(storeBenchLog(b)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := cooper.ReplayEpisodeLog(ep)
		if err != nil {
			b.Fatal(err)
		}
		if !stats.Identical() {
			b.Fatalf("replay diverged: %v", stats)
		}
	}
}

// benchStoreEpisode plays the same episode bare or fully instrumented
// (telemetry registry + store sink); comparing the pair's ns/op bounds
// the observability overhead.
func benchStoreEpisode(b *testing.B, instrumented bool) {
	b.Helper()
	sc, err := cooper.GenerateScenario(cooper.GenParams{Family: "platoon", Fleet: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	lab := cooper.NewEpisodeLab(sc) // captures amortise across iterations
	opts := cooper.EpisodeOptions{Frames: 4, Hz: 2}
	if _, err := lab.Run(opts); err != nil { // warm the capture cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if instrumented {
			opts.Metrics = cooper.NewMetrics()
			ew, err := cooper.NewEpisodeLog(io.Discard, cooper.EpisodeHeader{Label: "bench"})
			if err != nil {
				b.Fatal(err)
			}
			opts.Sink = ew
		}
		if _, err := lab.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreEpisodeBare(b *testing.B)         { benchStoreEpisode(b, false) }
func BenchmarkStoreEpisodeInstrumented(b *testing.B) { benchStoreEpisode(b, true) }

// BenchmarkStoreSnapshotJSON isolates the telemetry capture itself:
// snapshotting a hub-sized registry and rendering it as JSON.
func BenchmarkStoreSnapshotJSON(b *testing.B) {
	reg := cooper.NewMetrics()
	for i := 0; i < 12; i++ {
		reg.Counter(fmt.Sprintf("bench_counter_%d_total", i)).Add(int64(i) * 17)
	}
	reg.Gauge("bench_vehicles_cached").Set(32)
	h := reg.Histogram("bench_latency_us", 1000, 10_000, 100_000, 1_000_000)
	for i := 0; i < 4096; i++ {
		h.Observe(int64(i) * 997)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.Snapshot().WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
